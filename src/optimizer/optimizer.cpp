#include "optimizer/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/error.hpp"
#include "optimizer/typecheck.hpp"
#include "oql/printer.hpp"
#include "vec/ops.hpp"

namespace disco::optimizer {

namespace {

using algebra::LogicalPtr;
using algebra::LOp;
using physical::PhysicalPtr;

// Mediator-side CPU cost per row for one operator application, and the
// default selectivities of the textbook cost model (§3.1's "usual" cost
// functions; the paper leaves the constants open).
constexpr double kCpuPerRow = 2e-6;
constexpr double kFilterSelectivity = 0.5;
constexpr double kJoinSelectivity = 0.25;

// Floor for the health divisor: an open circuit (availability 0) prices
// a source call at 1/kMinAvailability times its healthy estimate rather
// than infinity, so such plans stay comparable (everything down is still
// a valid — partial — answer).
constexpr double kMinAvailability = 0.05;

class Coster {
 public:
  Coster(const CostHistory* history, const Optimizer::HealthFn* health)
      : history_(history), health_(health) {}

  Cost cost(const PhysicalPtr& node) const {
    switch (node->op) {
      case physical::POp::Exec: {
        CostHistory::Estimate est =
            history_ == nullptr
                ? CostHistory::Estimate{}
                : history_->estimate(node->repository, node->remote);
        return Cost{source_time(node->repository, est.time_s), 0,
                    std::max(est.rows, 0.0)};
      }
      case physical::POp::Const:
        return Cost{0, 0, static_cast<double>(node->data.size())};
      case physical::POp::Filter: {
        Cost in = cost(node->child);
        return Cost{in.net_s, in.cpu_s + in.rows * kCpuPerRow,
                    in.rows * kFilterSelectivity};
      }
      case physical::POp::Project: {
        Cost in = cost(node->child);
        return Cost{in.net_s, in.cpu_s + in.rows * kCpuPerRow, in.rows};
      }
      case physical::POp::HashJoin: {
        Cost l = cost(node->left);
        Cost r = cost(node->right);
        return Cost{std::max(l.net_s, r.net_s),
                    l.cpu_s + r.cpu_s + (l.rows + r.rows) * kCpuPerRow,
                    l.rows * r.rows * kJoinSelectivity};
      }
      case physical::POp::MergeJoin: {
        Cost l = cost(node->left);
        Cost r = cost(node->right);
        auto nlogn = [](double n) {
          return n * std::log2(std::max(n, 2.0));
        };
        return Cost{std::max(l.net_s, r.net_s),
                    l.cpu_s + r.cpu_s +
                        (nlogn(l.rows) + nlogn(r.rows)) * kCpuPerRow,
                    l.rows * r.rows * kJoinSelectivity};
      }
      case physical::POp::NestedLoopJoin: {
        Cost l = cost(node->left);
        Cost r = cost(node->right);
        double pairs = l.rows * r.rows;
        double rows = node->predicate == nullptr
                          ? pairs
                          : pairs * kJoinSelectivity;
        return Cost{std::max(l.net_s, r.net_s),
                    l.cpu_s + r.cpu_s + pairs * kCpuPerRow, rows};
      }
      case physical::POp::BindJoin: {
        Cost l = cost(node->left);
        double probe_time = 0;
        double probe_rows = 0;
        bool observed_probe = false;
        // Prefer a direct observation of the bound probe: the runtime
        // records probe calls under the plan's canonical probe_shape, so
        // once a bind join has run the model knows exactly what one
        // key-bound fetch costs here (near-constant for an indexed
        // source, a full scan's worth otherwise).
        if (history_ != nullptr && node->probe_shape != nullptr) {
          CostHistory::Estimate probe_est =
              history_->estimate(node->repository, node->probe_shape);
          if (probe_est.basis == CostHistory::Basis::Exact ||
              probe_est.basis == CostHistory::Basis::Close) {
            probe_time = source_time(node->repository, probe_est.time_s);
            probe_rows = probe_est.rows;
            observed_probe = true;
          }
        }
        if (!observed_probe) {
          CostHistory::Estimate est =
              history_ == nullptr
                  ? CostHistory::Estimate{}
                  : history_->estimate(node->repository, node->remote);
          // The key disjunction narrows the probe to roughly one row per
          // build key; scale the base estimate accordingly.
          double selectivity =
              est.rows > 0 ? std::min(1.0, l.rows / est.rows) : 1.0;
          probe_time = source_time(node->repository, est.time_s) * selectivity;
          probe_rows = est.rows * selectivity;
        }
        // Sequential: keys can only ship after the build side is in.
        return Cost{l.net_s + probe_time,
                    l.cpu_s + (l.rows + probe_rows) * kCpuPerRow,
                    std::max(l.rows, 1.0) * kJoinSelectivity *
                        std::max(probe_rows, 1.0)};
      }
      case physical::POp::Union: {
        Cost total;
        for (const PhysicalPtr& child : node->children) {
          Cost c = cost(child);
          total.net_s = std::max(total.net_s, c.net_s);
          total.cpu_s += c.cpu_s;
          total.rows += c.rows;
        }
        return total;
      }
    }
    throw InternalError("corrupt plan in coster");
  }

 private:
  /// Expected network time of one source call given its health: §3.3's
  /// learned estimate stretched by 1/availability (the expected number
  /// of rounds a source answering with probability p needs is 1/p).
  double source_time(const std::string& repository, double time_s) const {
    if (health_ == nullptr || !*health_) return time_s;
    double availability = (*health_)(repository);
    return time_s / std::max(availability, kMinAvailability);
  }

  const CostHistory* history_;
  const Optimizer::HealthFn* health_;
};

/// One from-binding of a branch after decomposition.
struct Leaf {
  std::string var;
  const catalog::MetaExtent* extent = nullptr;  ///< null for const leaves
  LogicalPtr const_node;                        ///< when extent == null
  std::vector<oql::ExprPtr> pushable_preds;
  std::vector<oql::ExprPtr> local_preds;  ///< single-var but not pushable
};

struct BranchParts {
  std::vector<Leaf> leaves;
  std::vector<oql::ExprPtr> join_preds;   ///< multi-leaf-var predicates
  std::vector<oql::ExprPtr> other_preds;  ///< reference aux collections
  oql::ExprPtr projection;
  bool distinct = false;
};

void collect_leaves(const LogicalPtr& node,
                    const catalog::Catalog& catalog,
                    std::vector<Leaf>& out) {
  switch (node->op) {
    case LOp::Join:
      collect_leaves(node->left, catalog, out);
      collect_leaves(node->right, catalog, out);
      internal_check(node->predicate == nullptr,
                     "translator branches carry predicates in the filter");
      return;
    case LOp::Submit: {
      internal_check(node->child->op == LOp::Get,
                     "translator submit must wrap a get");
      Leaf leaf;
      leaf.var = node->child->var;
      leaf.extent = &catalog.extent(node->child->extent);
      out.push_back(std::move(leaf));
      return;
    }
    case LOp::Const: {
      Leaf leaf;
      leaf.const_node = node;
      // Recover the variable from the env shape.
      if (!node->data.items().empty()) {
        leaf.var = node->data.items().front().fields().front().first;
      }
      out.push_back(std::move(leaf));
      return;
    }
    default:
      throw InternalError("unexpected operator in branch join tree: " +
                          std::string(to_string(node->op)));
  }
}

BranchParts decompose_branch(const LogicalPtr& branch,
                             const catalog::Catalog& catalog) {
  internal_check(branch->op == LOp::Project,
                 "translator branches are project-topped");
  BranchParts parts;
  parts.projection = branch->projection;
  parts.distinct = branch->distinct;
  LogicalPtr body = branch->child;
  std::vector<oql::ExprPtr> conjuncts;
  if (body->op == LOp::Filter) {
    conjuncts = oql::split_conjuncts(body->predicate);
    body = body->child;
  }
  collect_leaves(body, catalog, parts.leaves);

  std::set<std::string> leaf_vars;
  std::map<std::string, Leaf*> by_var;
  for (Leaf& leaf : parts.leaves) {
    leaf_vars.insert(leaf.var);
    by_var[leaf.var] = &leaf;
  }
  for (const oql::ExprPtr& conjunct : conjuncts) {
    std::set<std::string> fv = oql::free_names(conjunct);
    bool all_leaf_vars = std::all_of(
        fv.begin(), fv.end(),
        [&leaf_vars](const std::string& v) { return leaf_vars.contains(v); });
    if (!all_leaf_vars) {
      parts.other_preds.push_back(conjunct);
    } else if (fv.size() == 1) {
      Leaf* leaf = by_var[*fv.begin()];
      if (leaf->extent != nullptr &&
          is_pushable_predicate(conjunct, {leaf->var})) {
        leaf->pushable_preds.push_back(conjunct);
      } else {
        leaf->local_preds.push_back(conjunct);
      }
    } else {
      parts.join_preds.push_back(conjunct);
    }
  }
  return parts;
}

/// A source-access unit during plan construction: one submit (possibly
/// covering several merged leaves) or one constant, plus the predicates
/// the mediator still has to apply above it.
struct Unit {
  LogicalPtr node;  ///< submit(...) or const
  std::set<std::string> vars;
  std::vector<oql::ExprPtr> mediator_preds;
  // For submit units:
  std::string repository;
  std::string wrapper;
  LogicalPtr inner;  ///< expression inside the submit
};

/// Per-optimize() cache of wrapper grammars and accepts() verdicts.
///
/// At federation scale one implicit-extent query fans out over thousands
/// of branches whose submit candidates differ only in extent names — and
/// grammar::serialize erases extent names (every extent is the SOURCE
/// terminal), so the verdict of one Earley run answers them all. The
/// memo is keyed (grammar text, token string) and is therefore *exact*:
/// it can never change a verdict, only skip recomputing it.
class GrammarCache {
 public:
  GrammarCache(const Optimizer& optimizer, bool memo_enabled,
               PruneStats* stats)
      : optimizer_(optimizer), memo_enabled_(memo_enabled), stats_(stats) {}

  const grammar::Grammar& grammar_for(const std::string& wrapper) {
    auto it = grammars_.find(wrapper);
    if (it == grammars_.end()) {
      it = grammars_.emplace(wrapper, optimizer_.capability_for(wrapper))
               .first;
      signatures_.emplace(wrapper, it->second.to_text());
    }
    return it->second;
  }

  /// The grammar text of a wrapper — the capability signature extents
  /// shard by (fedcat::ExtentIndex uses the same form).
  const std::string& signature_of(const std::string& wrapper) {
    grammar_for(wrapper);
    return signatures_.at(wrapper);
  }

  bool accepts(const std::string& wrapper, const LogicalPtr& expr) {
    ++stats_->grammar_consultations;
    const grammar::Grammar& g = grammar_for(wrapper);
    if (!memo_enabled_) return g.accepts(expr);
    std::vector<grammar::Terminal> tokens;
    if (!grammar::serialize(expr, tokens)) return false;
    std::string key = signatures_.at(wrapper);
    key.push_back('\x01');
    for (grammar::Terminal t : tokens) {
      key.push_back(static_cast<char>(static_cast<int>(t) + 1));
    }
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++stats_->grammar_memo_hits;
      return it->second;
    }
    const bool ok = g.recognizes(tokens);
    memo_.emplace(std::move(key), ok);
    return ok;
  }

 private:
  const Optimizer& optimizer_;
  bool memo_enabled_;
  PruneStats* stats_;
  std::map<std::string, grammar::Grammar> grammars_;
  std::map<std::string, std::string> signatures_;
  std::unordered_map<std::string, bool> memo_;
};

}  // namespace

namespace {

/// True for a path chain rooted in one of `vars`: x.attr, x.doc.a.b, ...
/// Depth-1 chains serialize to ATTRIBUTE/PREDICATE terminals; deeper
/// ones to the PATH* terminals that only path-capable wrappers (the
/// docstore) advertise — flat wrappers reject them at the grammar check
/// and the predicate stays mediator-side.
bool is_var_path(const oql::ExprPtr& e, const std::set<std::string>& vars) {
  const oql::Expr* cursor = e.get();
  if (cursor == nullptr || cursor->kind != oql::ExprKind::Path) return false;
  while (cursor->kind == oql::ExprKind::Path) {
    cursor = cursor->child.get();
    if (cursor == nullptr) return false;
  }
  return cursor->kind == oql::ExprKind::Ident && vars.contains(cursor->name);
}

}  // namespace

bool is_pushable_predicate(const oql::ExprPtr& expr,
                           const std::set<std::string>& vars) {
  using oql::BinaryOp;
  using oql::ExprKind;
  if (expr == nullptr) return false;
  switch (expr->kind) {
    case ExprKind::Unary:
      return expr->unary_op == oql::UnaryOp::Not &&
             is_pushable_predicate(expr->child, vars);
    case ExprKind::Binary: {
      switch (expr->binary_op) {
        case BinaryOp::And:
        case BinaryOp::Or:
          return is_pushable_predicate(expr->left, vars) &&
                 is_pushable_predicate(expr->right, vars);
        case BinaryOp::Eq:
        case BinaryOp::Ne:
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge: {
          auto operand_ok = [&vars](const oql::ExprPtr& e) {
            if (e->kind == ExprKind::Literal) {
              return !e->literal.is_collection() &&
                     e->literal.kind() != ValueKind::Struct;
            }
            return is_var_path(e, vars);
          };
          return operand_ok(expr->left) && operand_ok(expr->right);
        }
        default:
          return false;
      }
    }
    default:
      return false;
  }
}

bool is_pushable_projection(const oql::ExprPtr& expr,
                            const std::set<std::string>& vars) {
  using oql::ExprKind;
  if (expr == nullptr) return false;
  auto path_ok = [&vars](const oql::ExprPtr& e) {
    return is_var_path(e, vars);
  };
  if (path_ok(expr)) return true;
  if (expr->kind == ExprKind::StructCtor) {
    for (const auto& [name, field] : expr->struct_fields) {
      if (!path_ok(field)) return false;
    }
    return !expr->struct_fields.empty();
  }
  return false;
}

Optimizer::Optimizer(const catalog::Catalog* catalog,
                     WrapperResolver wrappers, const CostHistory* history,
                     OptimizerOptions options)
    : catalog_(catalog),
      wrappers_(std::move(wrappers)),
      history_(history),
      options_(options) {
  internal_check(catalog_ != nullptr, "optimizer needs a catalog");
  internal_check(static_cast<bool>(wrappers_),
                 "optimizer needs a wrapper resolver");
}

grammar::Grammar Optimizer::capability_for(
    const std::string& wrapper_name) const {
  wrapper::Wrapper* wrapper = wrappers_(wrapper_name);
  internal_check(wrapper != nullptr,
                 "no wrapper object named '" + wrapper_name + "'");
  return wrapper->capabilities();
}

const std::string& Optimizer::wrapper_of_extent(
    const std::string& extent) const {
  return catalog_->extent(extent).wrapper;
}

physical::PhysicalPtr Optimizer::implement(const LogicalPtr& node) const {
  switch (node->op) {
    case LOp::Submit: {
      std::vector<std::string> extent_names = algebra::extents(node);
      internal_check(!extent_names.empty(), "submit without extents");
      return physical::make_exec(node->repository,
                                 wrapper_of_extent(extent_names.front()),
                                 node->child, node);
    }
    case LOp::Const:
      return physical::make_const(node->data, node);
    case LOp::Filter:
      return physical::make_filter(implement(node->child), node->predicate,
                                   node);
    case LOp::Project:
      return physical::make_project(implement(node->child),
                                    node->projection, node->distinct, node);
    case LOp::Union: {
      std::vector<PhysicalPtr> children;
      children.reserve(node->children.size());
      for (const LogicalPtr& child : node->children) {
        children.push_back(implement(child));
      }
      return physical::make_union(std::move(children), node);
    }
    case LOp::Join: {
      PhysicalPtr left = implement(node->left);
      PhysicalPtr right = implement(node->right);
      // Implementation rule: an equi-conjunct turns the join into a hash
      // join (§3.1's "implement join with merge-join" analogue).
      std::set<std::string> left_vars;
      for (const std::string& v : algebra::bound_vars(node->left)) {
        left_vars.insert(v);
      }
      std::set<std::string> right_vars;
      for (const std::string& v : algebra::bound_vars(node->right)) {
        right_vars.insert(v);
      }
      oql::ExprPtr left_key, right_key;
      std::vector<oql::ExprPtr> residual;
      for (const oql::ExprPtr& conjunct :
           oql::split_conjuncts(node->predicate)) {
        if (left_key == nullptr &&
            conjunct->kind == oql::ExprKind::Binary &&
            conjunct->binary_op == oql::BinaryOp::Eq) {
          auto var_of = [](const oql::ExprPtr& e) -> const std::string* {
            if (e->kind == oql::ExprKind::Path &&
                e->child->kind == oql::ExprKind::Ident) {
              return &e->child->name;
            }
            return nullptr;
          };
          const std::string* lv = var_of(conjunct->left);
          const std::string* rv = var_of(conjunct->right);
          if (lv != nullptr && rv != nullptr) {
            if (left_vars.contains(*lv) && right_vars.contains(*rv)) {
              left_key = conjunct->left;
              right_key = conjunct->right;
              continue;
            }
            if (left_vars.contains(*rv) && right_vars.contains(*lv)) {
              left_key = conjunct->right;
              right_key = conjunct->left;
              continue;
            }
          }
        }
        residual.push_back(conjunct);
      }
      if (left_key != nullptr) {
        // Vec mode steers batchable equi joins to the (vectorized) hash
        // join; merge join has no batch implementation.
        const bool vec_hash_join = options_.vec &&
                                   vec::vec_batchable(node->left) &&
                                   vec::vec_batchable(node->right);
        if (options_.prefer_merge_join && !vec_hash_join) {
          return physical::make_merge_join(std::move(left),
                                           std::move(right), left_key,
                                           right_key,
                                           oql::conjoin(residual), node);
        }
        return physical::make_hash_join(std::move(left), std::move(right),
                                        left_key, right_key,
                                        oql::conjoin(residual), node);
      }
      return physical::make_nl_join(std::move(left), std::move(right),
                                    node->predicate, node);
    }
    case LOp::Get:
      throw InternalError("bare get outside a submit cannot be implemented");
  }
  throw InternalError("corrupt logical expression in implement");
}

namespace {

/// Builds one pushdown variant of a branch. Returns the optimized logical
/// form (physical conversion happens through Optimizer::implement).
class BranchPlanner {
 public:
  /// `decisions` (nullable) receives one PushdownDecision per capability
  /// grammar consultation made while building variants. `grammars` is
  /// shared across every variant and branch of one optimize() call.
  BranchPlanner(const Optimizer& optimizer, const catalog::Catalog& catalog,
                const OptimizerOptions& options, GrammarCache* grammars,
                std::vector<PushdownDecision>* decisions = nullptr)
      : optimizer_(optimizer),
        catalog_(catalog),
        options_(options),
        grammars_(grammars),
        decisions_(decisions) {}

  LogicalPtr build(const BranchParts& parts, bool push_select,
                   bool push_project, bool merge_joins) const {
    std::vector<Unit> units;
    for (const Leaf& leaf : parts.leaves) {
      units.push_back(make_unit(leaf, push_select));
    }
    if (merge_joins) {
      units = merge_adjacent(std::move(units), parts);
    }
    units = reorder_connected(std::move(units), parts);

    // Apply mediator-side per-unit predicates.
    for (Unit& unit : units) {
      if (!unit.mediator_preds.empty()) {
        unit.node = algebra::filter(unit.node,
                                    oql::conjoin(unit.mediator_preds));
        unit.mediator_preds.clear();
        unit.inner = nullptr;  // no longer a bare submit
      }
    }

    // Left-deep mediator joins; join predicates attach as soon as both
    // sides are bound.
    std::vector<bool> used(parts.join_preds.size(), false);
    // Predicates consumed inside merged submits are marked by text.
    for (size_t i = 0; i < parts.join_preds.size(); ++i) {
      if (consumed_.contains(oql::to_oql(parts.join_preds[i]))) {
        used[i] = true;
      }
    }
    LogicalPtr tree = units.front().node;
    std::set<std::string> bound = units.front().vars;
    for (size_t u = 1; u < units.size(); ++u) {
      std::set<std::string> combined = bound;
      combined.insert(units[u].vars.begin(), units[u].vars.end());
      std::vector<oql::ExprPtr> applicable;
      for (size_t i = 0; i < parts.join_preds.size(); ++i) {
        if (used[i]) continue;
        std::set<std::string> fv = oql::free_names(parts.join_preds[i]);
        bool ok = std::all_of(fv.begin(), fv.end(),
                              [&combined](const std::string& v) {
                                return combined.contains(v);
                              });
        if (ok) {
          applicable.push_back(parts.join_preds[i]);
          used[i] = true;
        }
      }
      tree = algebra::join(tree, units[u].node, oql::conjoin(applicable));
      bound = std::move(combined);
    }

    std::vector<oql::ExprPtr> top = parts.other_preds;
    for (size_t i = 0; i < parts.join_preds.size(); ++i) {
      if (!used[i]) top.push_back(parts.join_preds[i]);
    }
    if (!top.empty()) {
      tree = algebra::filter(tree, oql::conjoin(top));
    }

    // R2: project pushdown — only when the whole branch is one clean
    // submit and the projection is expressible at the source.
    if (push_project && units.size() == 1 && top.empty() &&
        tree->op == LOp::Submit && !parts.distinct &&
        is_pushable_projection(parts.projection, units.front().vars)) {
      LogicalPtr pushed = algebra::project(tree->child, parts.projection,
                                           false);
      const bool accepted = grammars_->accepts(units.front().wrapper, pushed);
      record("R2 project-pushdown", units.front().repository,
             units.front().wrapper, pushed, accepted);
      if (accepted) {
        return algebra::submit(units.front().repository, pushed);
      }
    }
    return algebra::project(tree, parts.projection, parts.distinct);
  }

 private:
  Unit make_unit(const Leaf& leaf, bool push_select) const {
    Unit unit;
    unit.vars.insert(leaf.var);
    if (leaf.extent == nullptr) {
      unit.node = leaf.const_node;
      unit.mediator_preds = leaf.local_preds;
      unit.mediator_preds.insert(unit.mediator_preds.end(),
                                 leaf.pushable_preds.begin(),
                                 leaf.pushable_preds.end());
      return unit;
    }
    unit.repository = leaf.extent->repository;
    unit.wrapper = leaf.extent->wrapper;
    LogicalPtr inner = algebra::get(leaf.extent->name, leaf.var);
    unit.mediator_preds = leaf.local_preds;
    if (push_select && !leaf.pushable_preds.empty()) {
      LogicalPtr candidate =
          algebra::filter(inner, oql::conjoin(leaf.pushable_preds));
      // R1 consults the wrapper interface (§3.2).
      const bool accepted = grammars_->accepts(unit.wrapper, candidate);
      record("R1 select-pushdown", unit.repository, unit.wrapper, candidate,
             accepted);
      if (accepted) {
        inner = candidate;
      } else {
        unit.mediator_preds.insert(unit.mediator_preds.end(),
                                   leaf.pushable_preds.begin(),
                                   leaf.pushable_preds.end());
      }
    } else {
      unit.mediator_preds.insert(unit.mediator_preds.end(),
                                 leaf.pushable_preds.begin(),
                                 leaf.pushable_preds.end());
    }
    unit.inner = inner;
    unit.node = algebra::submit(unit.repository, inner);
    return unit;
  }

  /// Greedy join ordering: keep the first unit, then repeatedly prefer a
  /// unit connected to the bound variables by some join predicate, so
  /// left-deep joins chain on predicates instead of degenerating into
  /// cross products (e.g. `from x in a, y in b, z in c where a.id = c.id
  /// and b.id = c.id` joins a-c before b).
  std::vector<Unit> reorder_connected(std::vector<Unit> units,
                                      const BranchParts& parts) const {
    if (units.size() <= 2) return units;
    std::vector<Unit> ordered;
    ordered.push_back(std::move(units.front()));
    units.erase(units.begin());
    std::set<std::string> bound = ordered.front().vars;
    while (!units.empty()) {
      size_t pick = 0;
      bool found = false;
      for (size_t u = 0; u < units.size() && !found; ++u) {
        for (const oql::ExprPtr& pred : parts.join_preds) {
          if (consumed_.contains(oql::to_oql(pred))) continue;
          std::set<std::string> fv = oql::free_names(pred);
          std::set<std::string> combined = bound;
          combined.insert(units[u].vars.begin(), units[u].vars.end());
          bool connects =
              !fv.empty() &&
              std::all_of(fv.begin(), fv.end(),
                          [&combined](const std::string& v) {
                            return combined.contains(v);
                          }) &&
              // ... and actually spans old and new variables.
              std::any_of(fv.begin(), fv.end(),
                          [&units, u](const std::string& v) {
                            return units[u].vars.contains(v);
                          }) &&
              std::any_of(fv.begin(), fv.end(),
                          [&bound](const std::string& v) {
                            return bound.contains(v);
                          });
          if (connects) {
            pick = u;
            found = true;
            break;
          }
        }
      }
      bound.insert(units[pick].vars.begin(), units[pick].vars.end());
      ordered.push_back(std::move(units[pick]));
      units.erase(units.begin() + static_cast<long>(pick));
    }
    return ordered;
  }

  /// R3: merges adjacent submit units that live in the same repository
  /// behind the same wrapper, when the composed join is in the wrapper's
  /// language. Join predicates consumed here are recorded in consumed_.
  std::vector<Unit> merge_adjacent(std::vector<Unit> units,
                                   const BranchParts& parts) const {
    std::vector<Unit> out;
    for (Unit& next : units) {
      if (!out.empty()) {
        Unit& prev = out.back();
        bool mergeable = prev.inner != nullptr && next.inner != nullptr &&
                         prev.repository == next.repository &&
                         prev.wrapper == next.wrapper &&
                         prev.mediator_preds.empty() &&
                         next.mediator_preds.empty();
        if (mergeable) {
          std::set<std::string> combined = prev.vars;
          combined.insert(next.vars.begin(), next.vars.end());
          std::vector<oql::ExprPtr> link;
          for (const oql::ExprPtr& pred : parts.join_preds) {
            std::string text = oql::to_oql(pred);
            if (consumed_.contains(text)) continue;
            std::set<std::string> fv = oql::free_names(pred);
            bool ok = !fv.empty() &&
                      std::all_of(fv.begin(), fv.end(),
                                  [&combined](const std::string& v) {
                                    return combined.contains(v);
                                  }) &&
                      is_pushable_predicate(pred, combined);
            if (ok) link.push_back(pred);
          }
          LogicalPtr merged =
              algebra::join(prev.inner, next.inner, oql::conjoin(link));
          const bool accepted = grammars_->accepts(prev.wrapper, merged);
          record("R3 join-merge", prev.repository, prev.wrapper, merged,
                 accepted);
          if (accepted) {
            prev.inner = merged;
            prev.node = algebra::submit(prev.repository, merged);
            prev.vars = std::move(combined);
            for (const oql::ExprPtr& pred : link) {
              consumed_.insert(oql::to_oql(pred));
            }
            continue;
          }
        }
      }
      out.push_back(std::move(next));
    }
    return out;
  }

  void record(const char* rule, const std::string& repository,
              const std::string& wrapper, const LogicalPtr& expr,
              bool accepted) const {
    if (decisions_ == nullptr) return;
    decisions_->push_back({rule, repository, wrapper,
                           algebra::to_algebra_string(expr), accepted});
  }

  const Optimizer& optimizer_;
  const catalog::Catalog& catalog_;
  const OptimizerOptions& options_;
  GrammarCache* grammars_;
  std::vector<PushdownDecision>* decisions_;
  mutable std::set<std::string> consumed_;
};

/// Extension: builds a bind-join plan for a two-source equi-join branch,
/// or returns null when the shape does not qualify. `decisions`
/// (nullable) receives the probe-side capability consultation.
physical::PhysicalPtr try_bind_join(const Optimizer& optimizer,
                                    GrammarCache& grammars,
                                    const BranchParts& parts,
                                    const LogicalPtr& branch_logical,
                                    std::vector<PushdownDecision>* decisions) {
  if (parts.leaves.size() != 2) return nullptr;
  const Leaf& build = parts.leaves[0];
  const Leaf& probe = parts.leaves[1];
  if (build.extent == nullptr || probe.extent == nullptr) return nullptr;
  if (!probe.local_preds.empty()) return nullptr;

  // Find the equi key between the two variables.
  oql::ExprPtr left_key, right_key;
  std::vector<oql::ExprPtr> residual = parts.other_preds;
  for (const oql::ExprPtr& pred : parts.join_preds) {
    if (left_key == nullptr && pred->kind == oql::ExprKind::Binary &&
        pred->binary_op == oql::BinaryOp::Eq &&
        pred->left->kind == oql::ExprKind::Path &&
        pred->right->kind == oql::ExprKind::Path &&
        pred->left->child->kind == oql::ExprKind::Ident &&
        pred->right->child->kind == oql::ExprKind::Ident) {
      const std::string& a = pred->left->child->name;
      const std::string& b = pred->right->child->name;
      if (a == build.var && b == probe.var) {
        left_key = pred->left;
        right_key = pred->right;
        continue;
      }
      if (a == probe.var && b == build.var) {
        left_key = pred->right;
        right_key = pred->left;
        continue;
      }
    }
    residual.push_back(pred);
  }
  if (left_key == nullptr) return nullptr;

  // Probe base expression; its wrapper must take a (composed) filter —
  // the bind predicate is appended at run time.
  LogicalPtr probe_base = algebra::get(probe.extent->name, probe.var);
  if (!probe.pushable_preds.empty()) {
    probe_base = algebra::filter(probe_base,
                                 oql::conjoin(probe.pushable_preds));
  }
  LogicalPtr probe_with_bind = algebra::filter(
      probe_base->op == LOp::Filter ? probe_base->child : probe_base,
      oql::binary(oql::BinaryOp::Eq, right_key, right_key));
  const bool probe_ok =
      grammars.accepts(probe.extent->wrapper, probe_with_bind);
  if (decisions != nullptr) {
    decisions->push_back({"bind-join probe", probe.extent->repository,
                          probe.extent->wrapper,
                          algebra::to_algebra_string(probe_with_bind),
                          probe_ok});
  }
  if (!probe_ok) {
    return nullptr;
  }

  // Build side: its own little plan (with select pushdown when legal).
  LogicalPtr build_inner = algebra::get(build.extent->name, build.var);
  std::vector<oql::ExprPtr> build_mediator = build.local_preds;
  if (!build.pushable_preds.empty()) {
    LogicalPtr candidate = algebra::filter(
        build_inner, oql::conjoin(build.pushable_preds));
    if (grammars.accepts(build.extent->wrapper, candidate)) {
      build_inner = candidate;
    } else {
      build_mediator.insert(build_mediator.end(),
                            build.pushable_preds.begin(),
                            build.pushable_preds.end());
    }
  }
  LogicalPtr build_logical =
      algebra::submit(build.extent->repository, build_inner);
  physical::PhysicalPtr build_plan = optimizer.implement(build_logical);
  if (!build_mediator.empty()) {
    LogicalPtr filtered =
        algebra::filter(build_logical, oql::conjoin(build_mediator));
    build_plan = physical::make_filter(build_plan,
                                       oql::conjoin(build_mediator),
                                       filtered);
  }

  // Canonical one-key probe shape: probe_base with a single placeholder
  // equality on the bind key, composed exactly as the runtime composes
  // the real (literal-laden) probe. Cost-history observations of probe
  // calls are recorded under this shape, and the Coster estimates the
  // probe side from it — the §3.3 loop that notices indexed probes
  // returning in near-constant time.
  oql::ExprPtr placeholder =
      oql::binary(oql::BinaryOp::Eq, right_key, right_key);
  LogicalPtr probe_shape =
      probe_base->op == LOp::Filter
          ? algebra::filter(probe_base->child,
                            oql::binary(oql::BinaryOp::And,
                                        probe_base->predicate, placeholder))
          : algebra::filter(probe_base, placeholder);

  // Residual form of the join itself (below the projection): when either
  // side is unavailable the Project node above re-wraps it (§4).
  internal_check(branch_logical->op == LOp::Project,
                 "bind join candidates come from project-topped branches");
  physical::PhysicalPtr joined = physical::make_bind_join(
      std::move(build_plan), probe.extent->repository,
      probe.extent->wrapper, probe_base, probe_shape, left_key, right_key,
      oql::conjoin(residual), branch_logical->child);
  return physical::make_project(std::move(joined), parts.projection,
                                parts.distinct, branch_logical);
}

}  // namespace

Cost Optimizer::cost(const physical::PhysicalPtr& plan) const {
  return Coster(history_, &health_).cost(plan);
}

Optimizer::Result Optimizer::optimize(const oql::ExprPtr& query,
                                      obs::ObsContext obs) const {
  TranslationUnit unit = translate(query, *catalog_, options_.max_branches);
  if (options_.static_typecheck) {
    obs::ScopedSpan typecheck(obs, "typecheck", "optimizer");
    check_attributes(unit.expanded, *catalog_);
  }
  Result result;
  result.expanded = unit.expanded;
  result.prune = unit.prune;
  for (const auto& [name, plan] : unit.aux) {
    result.aux.emplace_back(name, implement(plan));
  }
  for (const auto& [name, plan] : unit.aux_closures) {
    result.aux_closures.emplace_back(name, implement(plan));
  }
  if (!unit.is_plan_mode()) {
    result.local = unit.local;
    return result;
  }

  std::vector<LogicalPtr> branches;
  if (unit.plan->op == LOp::Union) {
    branches = unit.plan->children;
  } else {
    branches.push_back(unit.plan);
  }

  Coster coster(history_, &health_);
  GrammarCache grammar_cache(*this, options_.prune, &result.prune);
  std::vector<PhysicalPtr> physical_branches;
  physical_branches.reserve(branches.size());
  std::vector<LogicalPtr> chosen_logical;
  chosen_logical.reserve(branches.size());

  // Shape sharing: above the threshold, branches with an identical shape
  // key reuse the first such branch's winning pushdown flags instead of
  // re-enumerating the {R1, R2, R3} lattice. The key captures everything
  // the rewrite rules can see — wrapper grammar texts, the repository /
  // wrapper co-location pattern (R3 merges need both equal), and the
  // predicate / projection texts — so a shared branch builds the same
  // *structural* winner; only per-repository cost differences are traded
  // away.
  struct ShapeChoice {
    bool push_select = false;
    bool push_project = false;
    bool merge_joins = false;
    bool bind_join = false;
    size_t variants_costed = 0;  ///< what the representative enumerated
  };
  std::unordered_map<std::string, ShapeChoice> shape_memo;
  const bool share = options_.prune &&
                     branches.size() > options_.prune_share_threshold;
  auto shape_key = [&](const BranchParts& parts) {
    std::string key;
    std::map<std::string, size_t> repo_ids;
    std::map<std::string, size_t> wrapper_ids;
    for (const Leaf& leaf : parts.leaves) {
      if (leaf.extent == nullptr) {
        key += "c|";
      } else {
        const size_t repo =
            repo_ids.emplace(leaf.extent->repository, repo_ids.size())
                .first->second;
        const size_t wrap =
            wrapper_ids.emplace(leaf.extent->wrapper, wrapper_ids.size())
                .first->second;
        key += 'e';
        key += std::to_string(repo);
        key += '.';
        key += std::to_string(wrap);
        key += ':';
        key += grammar_cache.signature_of(leaf.extent->wrapper);
        key += '|';
      }
      for (const oql::ExprPtr& pred : leaf.pushable_preds) {
        key += 'p' + oql::to_oql(pred) + ';';
      }
      for (const oql::ExprPtr& pred : leaf.local_preds) {
        key += 'l' + oql::to_oql(pred) + ';';
      }
    }
    for (const oql::ExprPtr& pred : parts.join_preds) {
      key += 'j' + oql::to_oql(pred) + ';';
    }
    for (const oql::ExprPtr& pred : parts.other_preds) {
      key += 'o' + oql::to_oql(pred) + ';';
    }
    key += parts.distinct ? "D" : "d";
    key += oql::to_oql(parts.projection);
    return key;
  };

  for (const LogicalPtr& branch : branches) {
    if (branch->op == LOp::Const) {
      physical_branches.push_back(physical::make_const(branch->data, branch));
      chosen_logical.push_back(branch);
      ++result.plans_considered;
      continue;
    }
    BranchParts parts = decompose_branch(branch, *catalog_);

    std::optional<Cost> best_cost;
    PhysicalPtr best_plan;
    LogicalPtr best_logical;
    std::vector<PushdownDecision> best_decisions;
    size_t best_candidate = static_cast<size_t>(-1);
    const bool record = options_.record_decisions;
    auto note_candidate = [&](const std::string& logical_text, Cost c,
                              bool ps, bool pp, bool mj, bool bj) {
      if (record) {
        result.candidates.push_back(
            {logical_text, c, ps, pp, mj, bj, false});
      }
      if (obs) {
        const uint64_t event =
            obs.trace->instant(obs.span, "candidate", "optimizer");
        obs.trace->tag(event, "logical", logical_text);
        obs.trace->tag(event, "total_s", c.total());
      }
    };

    std::string key;
    const ShapeChoice* shared = nullptr;
    if (share) {
      key = shape_key(parts);
      auto it = shape_memo.find(key);
      if (it != shape_memo.end()) shared = &it->second;
    }

    if (shared != nullptr && shared->bind_join) {
      // The representative's winner was a bind join; the qualification
      // tests and grammar verdicts are all shape-covered, so this should
      // qualify too — but fall back to full enumeration if it does not.
      std::vector<PushdownDecision> bind_decisions;
      physical::PhysicalPtr candidate =
          try_bind_join(*this, grammar_cache, parts, branch,
                        record ? &bind_decisions : nullptr);
      if (candidate != nullptr) {
        Cost c = coster.cost(candidate);
        ++result.plans_considered;
        result.prune.variants_skipped += shared->variants_costed - 1;
        note_candidate(algebra::to_algebra_string(branch), c, false, false,
                       false, true);
        best_cost = c;
        best_plan = candidate;
        best_logical = branch;
        best_decisions = std::move(bind_decisions);
        if (record) best_candidate = result.candidates.size() - 1;
      } else {
        shared = nullptr;
      }
    } else if (shared != nullptr) {
      std::vector<PushdownDecision> variant_decisions;
      BranchPlanner planner(*this, *catalog_, options_, &grammar_cache,
                            record ? &variant_decisions : nullptr);
      LogicalPtr variant = planner.build(parts, shared->push_select,
                                         shared->push_project,
                                         shared->merge_joins);
      best_plan = implement(variant);
      best_cost = coster.cost(best_plan);
      best_logical = variant;
      best_decisions = std::move(variant_decisions);
      ++result.plans_considered;
      result.prune.variants_skipped += shared->variants_costed - 1;
      note_candidate(algebra::to_algebra_string(variant), *best_cost,
                     shared->push_select, shared->push_project,
                     shared->merge_joins, false);
      if (record) best_candidate = result.candidates.size() - 1;
    }

    if (shared == nullptr) {
      ShapeChoice winner;
      size_t variants_costed = 0;
      std::set<std::string> seen;
      for (bool push_select : {true, false}) {
        if (push_select && !options_.enable_select_pushdown) continue;
        for (bool push_project : {true, false}) {
          if (push_project && !options_.enable_project_pushdown) continue;
          for (bool merge_joins : {true, false}) {
            if (merge_joins && !options_.enable_join_merge) continue;
            std::vector<PushdownDecision> variant_decisions;
            BranchPlanner planner(*this, *catalog_, options_, &grammar_cache,
                                  record ? &variant_decisions : nullptr);
            LogicalPtr variant =
                planner.build(parts, push_select, push_project, merge_joins);
            if (!seen.insert(algebra::to_algebra_string(variant)).second) {
              continue;  // the flags made no difference
            }
            PhysicalPtr plan = implement(variant);
            Cost c = coster.cost(plan);
            ++result.plans_considered;
            ++variants_costed;
            note_candidate(algebra::to_algebra_string(variant), c,
                           push_select, push_project, merge_joins, false);
            bool better =
                !best_cost.has_value() || c.total() < best_cost->total() ||
                (c.total() == best_cost->total() && !options_.cost_based);
            if (better) {
              best_cost = c;
              best_plan = plan;
              best_logical = variant;
              best_decisions = std::move(variant_decisions);
              winner = {push_select, push_project, merge_joins, false, 0};
              if (record) best_candidate = result.candidates.size() - 1;
            }
            if (!options_.cost_based) break;  // maximal pushdown first
          }
          if (!options_.cost_based && best_plan != nullptr) break;
        }
        if (!options_.cost_based && best_plan != nullptr) break;
      }
      if (options_.enable_bind_join) {
        std::vector<PushdownDecision> bind_decisions;
        physical::PhysicalPtr candidate =
            try_bind_join(*this, grammar_cache, parts, branch,
                          record ? &bind_decisions : nullptr);
        if (candidate != nullptr) {
          Cost c = coster.cost(candidate);
          ++result.plans_considered;
          ++variants_costed;
          note_candidate(algebra::to_algebra_string(branch), c, false, false,
                         false, true);
          if (!best_cost.has_value() || c.total() < best_cost->total()) {
            best_cost = c;
            best_plan = candidate;
            // The logical form stays the original branch: bind join is a
            // physical strategy for the same logical join.
            best_logical = branch;
            // The losing variant's consultations no longer apply; the
            // bind-join ones are appended below.
            best_decisions.clear();
            winner = {false, false, false, true, 0};
            if (record) best_candidate = result.candidates.size() - 1;
          }
        }
        // The probe-side consultation is worth explaining even when the
        // bind join lost or never qualified.
        if (record) {
          for (PushdownDecision& decision : bind_decisions) {
            best_decisions.push_back(std::move(decision));
          }
        }
      }
      if (share) {
        winner.variants_costed = variants_costed;
        shape_memo.emplace(std::move(key), winner);
      }
    }
    internal_check(best_plan != nullptr, "no plan produced for branch");
    if (record && best_candidate != static_cast<size_t>(-1)) {
      result.candidates[best_candidate].chosen = true;
    }
    for (PushdownDecision& decision : best_decisions) {
      result.decisions.push_back(std::move(decision));
    }
    physical_branches.push_back(std::move(best_plan));
    chosen_logical.push_back(std::move(best_logical));
  }

  LogicalPtr overall = algebra::union_of(chosen_logical);
  result.plan = physical::make_union(std::move(physical_branches), overall);
  result.estimated = coster.cost(result.plan);
  return result;
}

}  // namespace disco::optimizer
