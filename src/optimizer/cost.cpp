#include "optimizer/cost.hpp"

#include <cmath>
#include <mutex>

#include "common/error.hpp"

namespace disco::optimizer {

namespace {

/// Did an EWMA move enough to make cached plans stale?
bool moved_materially(double before, double after, double threshold) {
  double scale = std::max(std::abs(before), 1e-9);
  return std::abs(after - before) > threshold * scale;
}

}  // namespace

bool CostHistory::update(std::unordered_map<std::string, Entry>& map,
                         const std::string& key, double time_s, double rows) {
  Entry& entry = map[key];
  if (entry.count == 0) {
    entry.time_ewma = time_s;
    entry.rows_ewma = rows;
    ++entry.count;
    return true;  // first observation for this key: new information
  }
  double time_before = entry.time_ewma;
  double rows_before = entry.rows_ewma;
  entry.time_ewma = alpha_ * time_s + (1 - alpha_) * entry.time_ewma;
  entry.rows_ewma = alpha_ * rows + (1 - alpha_) * entry.rows_ewma;
  ++entry.count;
  return moved_materially(time_before, entry.time_ewma, kMaterialChange) ||
         moved_materially(rows_before, entry.rows_ewma, kMaterialChange);
}

void CostHistory::record(const std::string& repository,
                         const algebra::LogicalPtr& remote, double time_s,
                         size_t rows) {
  internal_check(remote != nullptr, "cannot record a null expression");
  Shard& shard = shard_for(repository);
  bool material;
  {
    std::unique_lock lock(shard.mutex);
    material =
        update(shard.exact,
               repository + "|" + algebra::to_algebra_string(remote), time_s,
               static_cast<double>(rows));
    update(shard.close, repository + "|" + algebra::signature(remote),
           time_s, static_cast<double>(rows));
    update(shard.per_repository, repository, time_s,
           static_cast<double>(rows));
  }
  if (material) {
    version_.fetch_add(1, std::memory_order_release);
  }
}

CostHistory::Estimate CostHistory::estimate(
    const std::string& repository, const algebra::LogicalPtr& remote) const {
  internal_check(remote != nullptr, "cannot estimate a null expression");
  Shard& shard = shard_for(repository);
  std::shared_lock lock(shard.mutex);
  auto exact_it =
      shard.exact.find(repository + "|" + algebra::to_algebra_string(remote));
  if (exact_it != shard.exact.end()) {
    return Estimate{exact_it->second.time_ewma, exact_it->second.rows_ewma,
                    Basis::Exact, exact_it->second.count};
  }
  auto close_it =
      shard.close.find(repository + "|" + algebra::signature(remote));
  if (close_it != shard.close.end()) {
    return Estimate{close_it->second.time_ewma, close_it->second.rows_ewma,
                    Basis::Close, close_it->second.count};
  }
  auto repo_it = shard.per_repository.find(repository);
  if (repo_it != shard.per_repository.end()) {
    return Estimate{repo_it->second.time_ewma, repo_it->second.rows_ewma,
                    Basis::Repository, repo_it->second.count};
  }
  return Estimate{};  // the paper's 0/1 default
}

size_t CostHistory::exact_entries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    total += shard.exact.size();
  }
  return total;
}

size_t CostHistory::repository_entries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    total += shard.per_repository.size();
  }
  return total;
}

size_t CostHistory::close_entries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    total += shard.close.size();
  }
  return total;
}

void CostHistory::clear() {
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mutex);
    shard.exact.clear();
    shard.close.clear();
    shard.per_repository.clear();
  }
  version_.fetch_add(1, std::memory_order_release);
}

}  // namespace disco::optimizer
