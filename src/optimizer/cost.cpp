#include "optimizer/cost.hpp"

#include "common/error.hpp"

namespace disco::optimizer {

void CostHistory::update(std::unordered_map<std::string, Entry>& map,
                         const std::string& key, double time_s, double rows) {
  Entry& entry = map[key];
  if (entry.count == 0) {
    entry.time_ewma = time_s;
    entry.rows_ewma = rows;
  } else {
    entry.time_ewma = alpha_ * time_s + (1 - alpha_) * entry.time_ewma;
    entry.rows_ewma = alpha_ * rows + (1 - alpha_) * entry.rows_ewma;
  }
  ++entry.count;
}

void CostHistory::record(const std::string& repository,
                         const algebra::LogicalPtr& remote, double time_s,
                         size_t rows) {
  internal_check(remote != nullptr, "cannot record a null expression");
  update(exact_, repository + "|" + algebra::to_algebra_string(remote),
         time_s, static_cast<double>(rows));
  update(close_, repository + "|" + algebra::signature(remote), time_s,
         static_cast<double>(rows));
  update(per_repository_, repository, time_s, static_cast<double>(rows));
}

CostHistory::Estimate CostHistory::estimate(
    const std::string& repository, const algebra::LogicalPtr& remote) const {
  internal_check(remote != nullptr, "cannot estimate a null expression");
  auto exact_it =
      exact_.find(repository + "|" + algebra::to_algebra_string(remote));
  if (exact_it != exact_.end()) {
    return Estimate{exact_it->second.time_ewma, exact_it->second.rows_ewma,
                    Basis::Exact, exact_it->second.count};
  }
  auto close_it =
      close_.find(repository + "|" + algebra::signature(remote));
  if (close_it != close_.end()) {
    return Estimate{close_it->second.time_ewma, close_it->second.rows_ewma,
                    Basis::Close, close_it->second.count};
  }
  auto repo_it = per_repository_.find(repository);
  if (repo_it != per_repository_.end()) {
    return Estimate{repo_it->second.time_ewma, repo_it->second.rows_ewma,
                    Basis::Repository, repo_it->second.count};
  }
  return Estimate{};  // the paper's 0/1 default
}

void CostHistory::clear() {
  exact_.clear();
  close_.clear();
  per_repository_.clear();
}

}  // namespace disco::optimizer
