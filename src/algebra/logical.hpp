// The mediator's logical algebra (§3.1–3.2 of the paper).
//
// The query optimizer turns OQL into trees of these operators. The
// DISCO-specific operator is submit(source, expr): "the meaning of expr is
// located at source" (§3.2). A submit's argument stays in the *mediator*
// name space; the exec physical algorithm applies the extent's type map
// when the call actually reaches the wrapper (§3.3).
//
// Tuple model: every non-Project operator produces a bag of *environment
// structs* — structs with one field per from-binding variable, e.g.
// get(person0, x) emits struct(x: <Person row>). Predicates and
// projections are ordinary OQL expressions over those variables, so
// Filter/Project evaluate them with the oql::Evaluator and the
// reconstruction of a partial answer back into OQL (§4) is direct.
//
// The paper's example translation (§3.2)
//     select x.name from x in person
//   =>
//     union(project(name, submit(r0, get(person0))),
//           project(name, submit(r1, get(person1))))
// is exactly what optimizer/translate.cpp produces over this algebra:
// queries distribute over the union of a type's extents, one branch per
// combination of data sources.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "oql/ast.hpp"
#include "value/value.hpp"

namespace disco::algebra {

enum class LOp {
  Get,     ///< rows of one extent, wrapped as struct(var: row)
  Const,   ///< materialized data (literal domains, embedded answers)
  Filter,  ///< predicate over the environment (the paper's `select` op)
  Project, ///< per-environment projection expression; terminal env -> value
  Join,    ///< merge of two disjoint environments + optional predicate
  Union,   ///< bag union of same-shaped children
  Submit,  ///< locate the child expression at a repository (§3.2)
};

const char* to_string(LOp op);

struct Logical;
using LogicalPtr = std::shared_ptr<const Logical>;

struct Logical {
  LOp op;

  // Get
  std::string extent;  ///< extent name (mediator name space)
  std::string var;     ///< binding variable introduced by the extent
  // Const
  Value data;
  // Filter / Join predicate, over the environment variables.
  oql::ExprPtr predicate;
  // Project
  oql::ExprPtr projection;
  bool distinct = false;
  // Submit
  std::string repository;

  // Children: child for unary ops (Filter/Project/Submit), left/right for
  // Join, children for Union.
  LogicalPtr child;
  LogicalPtr left, right;
  std::vector<LogicalPtr> children;
};

// -- factories ---------------------------------------------------------------
LogicalPtr get(std::string extent, std::string var);
LogicalPtr constant(Value data);
LogicalPtr filter(LogicalPtr child, oql::ExprPtr predicate);
LogicalPtr project(LogicalPtr child, oql::ExprPtr projection, bool distinct);
LogicalPtr join(LogicalPtr left, LogicalPtr right, oql::ExprPtr predicate);
LogicalPtr union_of(std::vector<LogicalPtr> children);
LogicalPtr submit(std::string repository, LogicalPtr child);

/// Algebraic text form matching the paper's notation, e.g.
/// "project(x.name, submit(r0, get(person0, x)))". Used by explain output,
/// tests, and as the exact-match cost-history key (§3.3).
std::string to_algebra_string(const LogicalPtr& expr);

/// Cost-model signature: like to_algebra_string but with every literal
/// constant masked as '?'. Two calls that differ only in constants share a
/// signature — the paper's "close match" (§3.3).
std::string signature(const LogicalPtr& expr);

/// Binding variables produced by this subtree, in join order.
std::vector<std::string> bound_vars(const LogicalPtr& expr);

/// Repositories mentioned by submit nodes under `expr`.
std::vector<std::string> repositories(const LogicalPtr& expr);

/// Extents mentioned by get nodes under `expr`.
std::vector<std::string> extents(const LogicalPtr& expr);

/// Deep structural equality (via to_algebra_string).
bool equal(const LogicalPtr& a, const LogicalPtr& b);

}  // namespace disco::algebra
