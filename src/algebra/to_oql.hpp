// Logical algebra -> OQL reconstruction (§4 of the paper).
//
// "The physical expression is transformed back into a high level query.
//  This transformation is possible because each physical operation has a
//  corresponding logical operation, and each logical operation has a
//  corresponding OQL expression."
//
// This is the piece that makes partial answers *queries*: the runtime
// keeps the logical form of every unavailable subtree and calls
// reconstruct() to embed it in the answer. It is also how the
// mediator-as-data-source wrapper forwards pushed-down algebra to another
// mediator: it reconstructs OQL text and submits it.
#pragma once

#include "algebra/logical.hpp"
#include "oql/ast.hpp"

namespace disco::algebra {

/// Rebuilds an OQL expression equivalent to `expr`.
///
/// Project nodes become select-from-where; env-shaped nodes (Get / Filter
/// / Join without a Project on top) become
///   select struct(v1: v1, ..., vn: vn) from ... where ...
/// so that their value equals the operator's environment-struct output.
/// Submit nodes are transparent (their argument is already in the
/// mediator name space, §3.2). Const nodes become literals.
oql::ExprPtr reconstruct(const LogicalPtr& expr);

}  // namespace disco::algebra
