#include "algebra/to_oql.hpp"

#include "common/error.hpp"

namespace disco::algebra {

namespace {

struct Decomposed {
  std::vector<oql::Binding> bindings;
  std::vector<oql::ExprPtr> conjuncts;
};

/// Turns an env-shaped subtree (Get/Filter/Join/Submit/Const over
/// environments) into from-bindings plus predicate conjuncts.
void decompose(const LogicalPtr& node, Decomposed& out) {
  switch (node->op) {
    case LOp::Get:
      out.bindings.push_back(
          oql::Binding{node->var, oql::ident(node->extent)});
      return;
    case LOp::Submit:
      decompose(node->child, out);
      return;
    case LOp::Filter: {
      decompose(node->child, out);
      for (const oql::ExprPtr& part : oql::split_conjuncts(node->predicate)) {
        out.conjuncts.push_back(part);
      }
      return;
    }
    case LOp::Join: {
      decompose(node->left, out);
      decompose(node->right, out);
      if (node->predicate != nullptr) {
        for (const oql::ExprPtr& part :
             oql::split_conjuncts(node->predicate)) {
          out.conjuncts.push_back(part);
        }
      }
      return;
    }
    case LOp::Const: {
      // A materialized env-bag: struct(x: row) items. When the env holds a
      // single variable we can strip the wrapper and bind the variable
      // over the raw rows, which is what a human-readable answer needs.
      const Value& data = node->data;
      if (data.is_collection() && !data.items().empty() &&
          data.items().front().kind() == ValueKind::Struct &&
          data.items().front().fields().size() == 1) {
        const std::string var = data.items().front().fields()[0].first;
        std::vector<Value> rows;
        rows.reserve(data.items().size());
        bool uniform = true;
        for (const Value& item : data.items()) {
          if (item.kind() != ValueKind::Struct ||
              item.fields().size() != 1 || item.fields()[0].first != var) {
            uniform = false;
            break;
          }
          rows.push_back(item.fields()[0].second);
        }
        if (uniform) {
          out.bindings.push_back(oql::Binding{
              var, oql::literal(Value::bag(std::move(rows)))});
          return;
        }
      }
      if (data.is_collection() && data.items().empty()) {
        // Empty env-bag: bind a throwaway variable over an empty bag.
        out.bindings.push_back(
            oql::Binding{"__empty", oql::literal(Value::bag({}))});
        return;
      }
      throw InternalError(
          "cannot decompose a multi-variable materialized environment "
          "into from-bindings");
    }
    case LOp::Project:
    case LOp::Union:
      throw InternalError(
          std::string("unexpected ") + to_string(node->op) +
          " inside an environment-shaped subtree");
  }
}

oql::ExprPtr select_over(const Decomposed& parts, oql::ExprPtr projection,
                         bool distinct) {
  return oql::select(distinct, std::move(projection), parts.bindings,
                     oql::conjoin(parts.conjuncts));
}

}  // namespace

oql::ExprPtr reconstruct(const LogicalPtr& expr) {
  internal_check(expr != nullptr, "cannot reconstruct a null expression");
  switch (expr->op) {
    case LOp::Const:
      return oql::literal(expr->data);
    case LOp::Union: {
      std::vector<oql::ExprPtr> args;
      args.reserve(expr->children.size());
      for (const LogicalPtr& child : expr->children) {
        args.push_back(reconstruct(child));
      }
      return oql::call("union", std::move(args));
    }
    case LOp::Submit:
      return reconstruct(expr->child);
    case LOp::Project: {
      Decomposed parts;
      decompose(expr->child, parts);
      return select_over(parts, expr->projection, expr->distinct);
    }
    case LOp::Get:
    case LOp::Filter:
    case LOp::Join: {
      Decomposed parts;
      decompose(expr, parts);
      std::vector<std::pair<std::string, oql::ExprPtr>> fields;
      for (const oql::Binding& binding : parts.bindings) {
        if (binding.var == "__empty") continue;
        fields.emplace_back(binding.var, oql::ident(binding.var));
      }
      oql::ExprPtr projection =
          fields.empty()
              ? oql::literal(Value::null())
              : oql::struct_ctor(std::move(fields));
      return select_over(parts, std::move(projection), false);
    }
  }
  throw InternalError("corrupt logical expression in reconstruct");
}

}  // namespace disco::algebra
