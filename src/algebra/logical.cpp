#include "algebra/logical.hpp"

#include <cctype>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "oql/printer.hpp"

namespace disco::algebra {

const char* to_string(LOp op) {
  switch (op) {
    case LOp::Get:
      return "get";
    case LOp::Const:
      return "const";
    case LOp::Filter:
      return "select";  // the paper calls the filtering operator `select`
    case LOp::Project:
      return "project";
    case LOp::Join:
      return "join";
    case LOp::Union:
      return "union";
    case LOp::Submit:
      return "submit";
  }
  return "?";
}

LogicalPtr get(std::string extent, std::string var) {
  auto node = std::make_shared<Logical>();
  node->op = LOp::Get;
  node->extent = std::move(extent);
  node->var = std::move(var);
  return node;
}

LogicalPtr constant(Value data) {
  auto node = std::make_shared<Logical>();
  node->op = LOp::Const;
  node->data = std::move(data);
  return node;
}

LogicalPtr filter(LogicalPtr child, oql::ExprPtr predicate) {
  internal_check(child != nullptr && predicate != nullptr,
                 "filter requires child and predicate");
  auto node = std::make_shared<Logical>();
  node->op = LOp::Filter;
  node->child = std::move(child);
  node->predicate = std::move(predicate);
  return node;
}

LogicalPtr project(LogicalPtr child, oql::ExprPtr projection, bool distinct) {
  internal_check(child != nullptr && projection != nullptr,
                 "project requires child and projection");
  auto node = std::make_shared<Logical>();
  node->op = LOp::Project;
  node->child = std::move(child);
  node->projection = std::move(projection);
  node->distinct = distinct;
  return node;
}

LogicalPtr join(LogicalPtr left, LogicalPtr right, oql::ExprPtr predicate) {
  internal_check(left != nullptr && right != nullptr,
                 "join requires two children");
  auto node = std::make_shared<Logical>();
  node->op = LOp::Join;
  node->left = std::move(left);
  node->right = std::move(right);
  node->predicate = std::move(predicate);
  return node;
}

LogicalPtr union_of(std::vector<LogicalPtr> children) {
  internal_check(!children.empty(), "union requires at least one child");
  if (children.size() == 1) return children.front();
  auto node = std::make_shared<Logical>();
  node->op = LOp::Union;
  node->children = std::move(children);
  return node;
}

LogicalPtr submit(std::string repository, LogicalPtr child) {
  internal_check(child != nullptr, "submit requires a child");
  auto node = std::make_shared<Logical>();
  node->op = LOp::Submit;
  node->repository = std::move(repository);
  node->child = std::move(child);
  return node;
}

namespace {

std::string mask(const std::string& text);

void render(const LogicalPtr& expr, bool mask_constants, std::string& out) {
  internal_check(expr != nullptr, "cannot render a null logical expression");
  switch (expr->op) {
    case LOp::Get:
      out += "get(" + expr->extent + ", " + expr->var + ")";
      return;
    case LOp::Const:
      out += mask_constants ? "const(?)" : "const(" + expr->data.to_oql() + ")";
      return;
    case LOp::Filter: {
      std::string pred = oql::to_oql(expr->predicate);
      out += "select(" + (mask_constants ? mask(pred) : pred) + ", ";
      render(expr->child, mask_constants, out);
      out += ")";
      return;
    }
    case LOp::Project: {
      std::string proj = oql::to_oql(expr->projection);
      out += std::string("project(") + (expr->distinct ? "distinct " : "") +
             (mask_constants ? mask(proj) : proj) + ", ";
      render(expr->child, mask_constants, out);
      out += ")";
      return;
    }
    case LOp::Join: {
      out += "join(";
      render(expr->left, mask_constants, out);
      out += ", ";
      render(expr->right, mask_constants, out);
      if (expr->predicate != nullptr) {
        std::string pred = oql::to_oql(expr->predicate);
        out += ", " + (mask_constants ? mask(pred) : pred);
      }
      out += ")";
      return;
    }
    case LOp::Union: {
      out += "union(";
      for (size_t i = 0; i < expr->children.size(); ++i) {
        if (i > 0) out += ", ";
        render(expr->children[i], mask_constants, out);
      }
      out += ")";
      return;
    }
    case LOp::Submit: {
      out += "submit(" + expr->repository + ", ";
      render(expr->child, mask_constants, out);
      out += ")";
      return;
    }
  }
  throw InternalError("corrupt logical expression");
}

/// Masks literal tokens inside a printed OQL fragment: numbers and quoted
/// strings become '?'. Good enough for the close-match signature; it only
/// needs to be stable and constant-insensitive, not reversible.
std::string mask(const std::string& text) {
  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '"') {
      out += '?';
      ++i;
      while (i < text.size()) {
        if (text[i] == '\\') {
          i += 2;
          continue;
        }
        if (text[i] == '"') {
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                    text[i - 1] != '_'))) {
      out += '?';
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              text[i] == '.' || text[i] == 'e' || text[i] == 'E' ||
              ((text[i] == '+' || text[i] == '-') && i > 0 &&
               (text[i - 1] == 'e' || text[i - 1] == 'E')))) {
        ++i;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

}  // namespace

std::string to_algebra_string(const LogicalPtr& expr) {
  std::string out;
  render(expr, /*mask_constants=*/false, out);
  return out;
}

std::string signature(const LogicalPtr& expr) {
  std::string out;
  render(expr, /*mask_constants=*/true, out);
  return out;
}

namespace {

void collect_vars(const LogicalPtr& expr, std::vector<std::string>& out) {
  switch (expr->op) {
    case LOp::Get:
      out.push_back(expr->var);
      return;
    case LOp::Const:
      return;
    case LOp::Filter:
    case LOp::Project:
    case LOp::Submit:
      collect_vars(expr->child, out);
      return;
    case LOp::Join:
      collect_vars(expr->left, out);
      collect_vars(expr->right, out);
      return;
    case LOp::Union:
      // All children have the same shape; the first is representative.
      collect_vars(expr->children.front(), out);
      return;
  }
}

template <typename Fn>
void walk(const LogicalPtr& expr, const Fn& fn) {
  fn(expr);
  switch (expr->op) {
    case LOp::Get:
    case LOp::Const:
      return;
    case LOp::Filter:
    case LOp::Project:
    case LOp::Submit:
      walk(expr->child, fn);
      return;
    case LOp::Join:
      walk(expr->left, fn);
      walk(expr->right, fn);
      return;
    case LOp::Union:
      for (const LogicalPtr& child : expr->children) walk(child, fn);
      return;
  }
}

}  // namespace

std::vector<std::string> bound_vars(const LogicalPtr& expr) {
  std::vector<std::string> out;
  collect_vars(expr, out);
  return out;
}

std::vector<std::string> repositories(const LogicalPtr& expr) {
  std::vector<std::string> out;
  walk(expr, [&out](const LogicalPtr& node) {
    if (node->op == LOp::Submit) out.push_back(node->repository);
  });
  return out;
}

std::vector<std::string> extents(const LogicalPtr& expr) {
  std::vector<std::string> out;
  walk(expr, [&out](const LogicalPtr& node) {
    if (node->op == LOp::Get) out.push_back(node->extent);
  });
  return out;
}

bool equal(const LogicalPtr& a, const LogicalPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return to_algebra_string(a) == to_algebra_string(b);
}

}  // namespace disco::algebra
