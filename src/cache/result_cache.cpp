#include "cache/result_cache.hpp"

#include <utility>
#include <vector>

#include "obs/trace.hpp"  // json_escape

namespace disco::cache {

/// The single-flight rendezvous. The leader resolves the promise exactly
/// once — with the shared result on publish, with nullptr on abandon —
/// always *after* releasing the cache lock, so joiners never wake into
/// contention.
struct ResultCache::Ticket::Flight {
  std::promise<std::shared_ptr<const CachedResult>> promise;
  std::shared_future<std::shared_ptr<const CachedResult>> future;
  std::string key;
  std::string repository;
  /// Generations at flight creation; publish() stores the entry only
  /// when both still match (no invalidation happened mid-fetch).
  uint64_t generation = 0;
  uint64_t repo_generation = 0;

  Flight() : future(promise.get_future().share()) {}
};

ResultCache::Ticket::~Ticket() {
  if (cache_ != nullptr && flight_ != nullptr) cache_->abandon(flight_);
}

ResultCache::Ticket::Ticket(Ticket&& other) noexcept
    : cache_(std::exchange(other.cache_, nullptr)),
      flight_(std::move(other.flight_)) {
  other.flight_.reset();
}

ResultCache::Ticket& ResultCache::Ticket::operator=(Ticket&& other) noexcept {
  if (this != &other) {
    if (cache_ != nullptr && flight_ != nullptr) cache_->abandon(flight_);
    cache_ = std::exchange(other.cache_, nullptr);
    flight_ = std::move(other.flight_);
    other.flight_.reset();
  }
  return *this;
}

ResultCache::ResultCache(CacheOptions options, Clock clock)
    : options_(options), clock_(std::move(clock)) {}

std::string ResultCache::make_key(const std::string& repository,
                                  const algebra::LogicalPtr& remote) {
  // '\n' cannot appear in a repository name or the algebra text, so the
  // pair is unambiguous.
  return repository + '\n' + algebra::to_algebra_string(remote);
}

uint64_t ResultCache::repo_generation_locked(
    const std::string& repository) const {
  auto it = repo_generations_.find(repository);
  return it == repo_generations_.end() ? 0 : it->second;
}

void ResultCache::erase_locked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_ -= it->second->bytes;
  entries_.erase(it);
}

void ResultCache::evict_over_budget_locked() {
  while (bytes_ > options_.max_bytes && !entries_.empty()) {
    auto victim = entries_.end();
    uint64_t oldest = 0;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const uint64_t used =
          it->second->last_used.load(std::memory_order_relaxed);
      if (victim == entries_.end() || used < oldest) {
        victim = it;
        oldest = used;
      }
    }
    bytes_ -= victim->second->bytes;
    entries_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

ResultCache::Lookup ResultCache::get_or_begin(
    const std::string& repository, const algebra::LogicalPtr& remote) {
  const std::string key = make_key(repository, remote);
  for (;;) {
    {
      // Fast path: a fresh entry under the shared lock. Recency is an
      // atomic tick so hits never need the exclusive side.
      std::shared_lock lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end() && fresh(*it->second)) {
        it->second->last_used.store(
            tick_.fetch_add(1, std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        Lookup lookup;
        lookup.kind = LookupKind::Hit;
        lookup.result = it->second->result;
        return lookup;
      }
    }
    std::shared_future<std::shared_ptr<const CachedResult>> wait_on;
    {
      std::unique_lock lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        if (fresh(*it->second)) {  // raced with another leader's publish
          it->second->last_used.store(
              tick_.fetch_add(1, std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
          hits_.fetch_add(1, std::memory_order_relaxed);
          Lookup lookup;
          lookup.kind = LookupKind::Hit;
          lookup.result = it->second->result;
          return lookup;
        }
        // Expired: drop it now; the flight below refreshes it.
        bytes_ -= it->second->bytes;
        entries_.erase(it);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      auto flight_it = flights_.find(key);
      if (flight_it != flights_.end()) {
        wait_on = flight_it->second->future;
      } else {
        auto flight = std::make_shared<Ticket::Flight>();
        flight->key = key;
        flight->repository = repository;
        flight->generation = generation_;
        flight->repo_generation = repo_generation_locked(repository);
        flights_.emplace(key, flight);
        misses_.fetch_add(1, std::memory_order_relaxed);
        Lookup lookup;
        lookup.kind = LookupKind::Lead;
        lookup.ticket = Ticket(this, std::move(flight));
        return lookup;
      }
    }
    // Join: wait outside every lock. A null result means the leader's
    // fetch failed (never cached, never shared) — loop and re-race.
    std::shared_ptr<const CachedResult> result = wait_on.get();
    if (result != nullptr) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      Lookup lookup;
      lookup.kind = LookupKind::Coalesced;
      lookup.result = std::move(result);
      return lookup;
    }
  }
}

void ResultCache::publish(Ticket& ticket, CachedResult result) {
  if (ticket.flight_ == nullptr) return;
  std::shared_ptr<Ticket::Flight> flight = std::move(ticket.flight_);
  ticket.cache_ = nullptr;
  auto shared = std::make_shared<const CachedResult>(std::move(result));
  {
    std::unique_lock lock(mutex_);
    auto it = flights_.find(flight->key);
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
    // Store only when no invalidation fenced this flight off: a result
    // computed before a catalog change or circuit transition must not
    // outlive it.
    if (flight->generation == generation_ &&
        flight->repo_generation ==
            repo_generation_locked(flight->repository)) {
      auto entry = std::make_unique<Entry>();
      entry->result = shared;
      entry->repository = flight->repository;
      entry->bytes = flight->key.size() + shared->data.deep_size() +
                     /*fixed bookkeeping overhead*/ 128;
      entry->expires_at_s = now() + options_.ttl_s;
      entry->last_used.store(
          tick_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      erase_locked(flight->key);
      bytes_ += entry->bytes;
      entries_[flight->key] = std::move(entry);
      insertions_.fetch_add(1, std::memory_order_relaxed);
      evict_over_budget_locked();
    }
  }
  flight->promise.set_value(std::move(shared));  // wake joiners, lock-free
}

void ResultCache::abandon(const std::shared_ptr<Ticket::Flight>& flight) {
  {
    std::unique_lock lock(mutex_);
    auto it = flights_.find(flight->key);
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
  }
  flight->promise.set_value(nullptr);  // joiners re-race for leadership
}

bool ResultCache::contains(const std::string& repository,
                           const algebra::LogicalPtr& remote) const {
  const std::string key = make_key(repository, remote);
  std::shared_lock lock(mutex_);
  auto it = entries_.find(key);
  return it != entries_.end() && fresh(*it->second);
}

void ResultCache::invalidate_all() {
  std::unique_lock lock(mutex_);
  ++generation_;
  entries_.clear();
  bytes_ = 0;
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void ResultCache::invalidate_repository(const std::string& repository) {
  std::unique_lock lock(mutex_);
  ++repo_generations_[repository];
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second->repository == repository) {
      bytes_ -= it->second->bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void ResultCache::on_catalog_version(uint64_t version) {
  {
    std::shared_lock lock(mutex_);
    if (catalog_version_seen_ && last_catalog_version_ == version) return;
  }
  std::unique_lock lock(mutex_);
  if (catalog_version_seen_ && last_catalog_version_ == version) return;
  const bool first = !catalog_version_seen_;
  catalog_version_seen_ = true;
  last_catalog_version_ = version;
  if (first) return;  // nothing cached before the first sighting
  ++generation_;
  entries_.clear();
  bytes_ = 0;
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  std::shared_lock lock(mutex_);
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

std::string ResultCache::stats_json() const {
  const CacheStats s = stats();
  std::string out = "{\"enabled\":true";
  out += ",\"hits\":" + std::to_string(s.hits);
  out += ",\"coalesced\":" + std::to_string(s.coalesced);
  out += ",\"misses\":" + std::to_string(s.misses);
  out += ",\"insertions\":" + std::to_string(s.insertions);
  out += ",\"evictions\":" + std::to_string(s.evictions);
  out += ",\"invalidations\":" + std::to_string(s.invalidations);
  out += ",\"entry_count\":" + std::to_string(s.entries);
  out += ",\"bytes\":" + std::to_string(s.bytes);
  out += ",\"entries\":[";
  {
    std::shared_lock lock(mutex_);
    bool first = true;
    for (const auto& [key, entry] : entries_) {
      if (!first) out += ',';
      first = false;
      // make_key() joined repository and algebra text with '\n'.
      const size_t sep = key.find('\n');
      const std::string remote =
          sep == std::string::npos ? std::string() : key.substr(sep + 1);
      out += "{\"repository\":\"" + obs::json_escape(entry->repository);
      out += "\",\"remote\":\"" + obs::json_escape(remote);
      out += "\",\"bytes\":" + std::to_string(entry->bytes) + '}';
    }
  }
  out += "]}";
  return out;
}

}  // namespace disco::cache
