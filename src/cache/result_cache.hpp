// Submit-result cache with single-flight coalescing (src/cache/).
//
// DISCO's cost model (§3.3) shows that the exec round-trips to the data
// sources dominate query latency; a mediator serving heavy traffic keeps
// re-paying them even when the federation hasn't changed (cf. HERMES's
// caching of external-source calls and Garlic's wrapper architecture).
// This module sits between the physical runtime and the dispatcher and
// memoizes *submit results*:
//
//   key   = (repository, canonical serialized remote algebra)
//   value = the materialized reply rows (an immutable, shared Value)
//
// so a warm query costs zero source calls. Three mechanisms keep it
// honest:
//
//   * Eviction: LRU under a byte budget (Value::deep_size accounting)
//     plus a per-entry TTL in simulated seconds — the staleness contract
//     for autonomous sources the mediator cannot watch for updates.
//   * Invalidation: the mediator drops everything when the catalog
//     version moves (register_* / execute_odl — "the mediator must
//     monitor updates to extents", §3.3), drops one repository's entries
//     on every circuit-state transition (src/session/ health tracking:
//     a source that flapped may have restarted with different data), and
//     exposes Mediator::invalidate_cache() for explicit refresh.
//   * Single-flight: when N concurrent queries need the same
//     (repository, remote) submit, the first becomes the *leader* and
//     dispatches; the rest block on a shared future and reuse its reply
//     — an 8-way identical fan-out costs one network call. Failed
//     fetches are never cached and never shared: the leader abandons,
//     waiters re-race for leadership (§4 residual semantics stay
//     per-query).
//
// Concurrency: the table sits under a shared_mutex — hits take the
// shared side and bump an atomic recency tick (approximate LRU);
// insert/evict/invalidate take the exclusive side. Joiners wait on a
// shared_future outside any lock; the leader resolves it after
// releasing the lock. TSan-clean (tests/test_cache.cpp, label
// `concurrency`).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "algebra/logical.hpp"
#include "value/value.hpp"

namespace disco::cache {

struct CacheOptions {
  /// Master switch; off by default so the §4 fetch-every-time semantics
  /// is unchanged unless asked for.
  bool enabled = false;
  /// Byte budget for cached replies (Value::deep_size accounting plus a
  /// fixed per-entry overhead). LRU-evicted when exceeded.
  size_t max_bytes = 8ull << 20;
  /// Per-entry time-to-live in *simulated* seconds (the VirtualClock in
  /// virtual-time mode, scaled wall time in wall-clock mode). Infinity
  /// means entries live until evicted or invalidated.
  double ttl_s = std::numeric_limits<double>::infinity();
};

/// Plain-value snapshot of the cache counters at one instant.
struct CacheStats {
  uint64_t hits = 0;        ///< lookups served from a stored entry
  uint64_t coalesced = 0;   ///< lookups served by joining an in-flight leader
  uint64_t misses = 0;      ///< lookups that became the fetching leader
  uint64_t insertions = 0;  ///< successful publishes stored in the table
  uint64_t evictions = 0;   ///< entries dropped by LRU pressure or TTL
  uint64_t invalidations = 0;  ///< invalidation *events* (not entries)
  uint64_t entries = 0;     ///< current entry count
  uint64_t bytes = 0;       ///< current accounted bytes
};

/// One cached submit reply. Immutable once published; shared between the
/// table and every thread that was served from it (Value payloads are
/// shared-immutable, so cross-thread reads are safe).
struct CachedResult {
  Value data;                 ///< the wrapper's reply (a bag)
  double source_latency_s = 0;  ///< simulated latency of the call that
                                ///< produced it (for introspection)
};

class ResultCache {
 public:
  /// Seconds for TTL accounting; the mediator wires the same simulated-
  /// seconds clock it gives the health tracker. Empty = no expiry.
  using Clock = std::function<double()>;

  explicit ResultCache(CacheOptions options, Clock clock = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  const CacheOptions& options() const { return options_; }

  /// The canonical cache key: repository plus the exact algebra text of
  /// the shipped expression (the same serialization the §3.3 cost
  /// history keys on). Bind-join probes include their key disjunction in
  /// `remote`, so different build sides cache separately.
  static std::string make_key(const std::string& repository,
                              const algebra::LogicalPtr& remote);

  /// Move-only leader obligation: exactly one publish(), or abandonment
  /// on destruction (exception safety — a dead leader must not leave
  /// joiners blocked forever).
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket();
    Ticket(Ticket&& other) noexcept;
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    explicit operator bool() const { return flight_ != nullptr; }

   private:
    friend class ResultCache;
    struct Flight;
    Ticket(ResultCache* cache, std::shared_ptr<Flight> flight)
        : cache_(cache), flight_(std::move(flight)) {}

    ResultCache* cache_ = nullptr;
    std::shared_ptr<Flight> flight_;
  };

  enum class LookupKind {
    Hit,        ///< served from a stored entry
    Coalesced,  ///< served by waiting on another thread's in-flight fetch
    Lead,       ///< caller must fetch, then publish() (or drop the Ticket)
  };

  struct Lookup {
    LookupKind kind = LookupKind::Lead;
    /// Set for Hit / Coalesced.
    std::shared_ptr<const CachedResult> result;
    /// Set for Lead; publish through it or let it abandon on destruction.
    Ticket ticket;
  };

  /// The single-flight entry point. Returns a stored result (Hit), waits
  /// for and returns another thread's in-flight result (Coalesced — the
  /// wait happens outside every lock), or appoints the caller leader
  /// (Lead). When a leader abandons, its waiters re-race: one becomes
  /// the new leader, so a flight is never orphaned.
  Lookup get_or_begin(const std::string& repository,
                      const algebra::LogicalPtr& remote);

  /// Leader success: stores the entry (unless the world moved since the
  /// flight began — catalog or repository invalidation), wakes every
  /// joiner with the shared result, and consumes the ticket.
  void publish(Ticket& ticket, CachedResult result);

  /// True when a fresh entry for this submit is stored right now (no
  /// stats or recency side effects — explain's "served from cache").
  bool contains(const std::string& repository,
                const algebra::LogicalPtr& remote) const;

  /// Drops everything (explicit refresh, catalog changes).
  void invalidate_all();
  /// Drops one repository's entries and fences its in-flight publishes
  /// (circuit-state transitions from src/session/ health tracking).
  void invalidate_repository(const std::string& repository);
  /// Invalidates everything iff `version` differs from the last seen
  /// catalog version (cheap no-op fast path on the query hot path).
  void on_catalog_version(uint64_t version);

  CacheStats stats() const;

  /// stats() plus the per-entry inventory as one JSON object:
  /// {"enabled":true,"hits":..,...,"entries":[{"repository":..,
  /// "remote":..,"bytes":..},...]}. Repository names and remote algebra
  /// text are free-form (string predicates carry quotes; names may carry
  /// backslashes) and are escaped, so the output is always valid JSON.
  std::string stats_json() const;

 private:
  friend class Ticket;

  struct Entry {
    std::shared_ptr<const CachedResult> result;
    std::string repository;
    size_t bytes = 0;
    double expires_at_s = std::numeric_limits<double>::infinity();
    /// Recency tick; written under the *shared* lock, hence atomic.
    std::atomic<uint64_t> last_used{0};
  };

  double now() const { return clock_ ? clock_() : 0.0; }
  bool fresh(const Entry& entry) const {
    return entry.expires_at_s > now();
  }
  uint64_t repo_generation_locked(const std::string& repository) const;
  /// Must hold the exclusive lock.
  void erase_locked(const std::string& key);
  void evict_over_budget_locked();
  void abandon(const std::shared_ptr<Ticket::Flight>& flight);

  CacheOptions options_;
  Clock clock_;

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string, std::shared_ptr<Ticket::Flight>> flights_;
  /// Bumped by invalidate_all(); flights born under an older generation
  /// still wake their joiners but are not stored.
  uint64_t generation_ = 0;
  /// Per-repository fence bumped by invalidate_repository().
  std::unordered_map<std::string, uint64_t> repo_generations_;
  uint64_t last_catalog_version_ = 0;
  bool catalog_version_seen_ = false;
  size_t bytes_ = 0;

  std::atomic<uint64_t> tick_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace disco::cache
