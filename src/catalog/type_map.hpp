// The local transformation map (§2.2.2 of the paper).
//
//   extent personprime0 of PersonPrime wrapper w0 repository r0
//     map ((person0=personprime0),(name=n),(salary=s));
//
// "Each string is either (1) an equivalence between the name of the data
// source (relation) and the name of the extent of the mediator type, or
// (2) an equivalence between the name of a field of the data source
// (relation) and the name of a field of the mediator type."
//
// The mediator applies the map when a query crosses the wrapper boundary
// (mediator names -> source names) and again, in reverse, when data comes
// back (source attribute names -> mediator attribute names). Maps are
// flat, as in the paper ("At present, maps are restricted to a flat
// structure"); nested maps are listed there as future work.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "value/value.hpp"

namespace disco::catalog {

class TypeMap {
 public:
  /// Identity map: source relation and attributes share the mediator
  /// names ("The type of the objects in the data source are assumed to be
  /// the same as the type of the objects in the extent", §2.1).
  TypeMap() = default;

  /// `source_relation` empty means "same as extent name". Field pairs are
  /// (source_field, mediator_field), the paper's (name=n) order.
  TypeMap(std::string source_relation,
          std::vector<std::pair<std::string, std::string>> fields);

  bool is_identity() const {
    return source_relation_.empty() && fields_.empty();
  }

  /// Relation name in the data source for `extent_name` in the mediator.
  std::string source_relation(const std::string& extent_name) const;

  /// Mediator attribute -> source attribute (identity when unmapped).
  std::string to_source_attribute(const std::string& mediator_name) const;
  /// Source attribute -> mediator attribute (identity when unmapped).
  std::string to_mediator_attribute(const std::string& source_name) const;

  /// Renames the fields of a source row struct into mediator names.
  Value rename_row_to_mediator(const Value& source_row) const;

  const std::vector<std::pair<std::string, std::string>>& fields() const {
    return fields_;
  }

  /// The ODL textual form: ((rel=extent),(srcfield=medfield),...) —
  /// empty string for the identity map.
  std::string to_odl(const std::string& extent_name) const;

 private:
  std::string source_relation_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace disco::catalog
