#include "catalog/catalog.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace disco::catalog {

void Catalog::define_repository(Repository repository) {
  ++version_;
  if (repository.name.empty()) {
    throw CatalogError("repository needs a name");
  }
  if (repositories_.contains(repository.name)) {
    throw CatalogError("repository '" + repository.name +
                       "' is already defined");
  }
  repository_order_.push_back(repository.name);
  repositories_.emplace(repository.name, std::move(repository));
}

bool Catalog::has_repository(const std::string& name) const {
  return repositories_.contains(name);
}

const Repository& Catalog::repository(const std::string& name) const {
  auto it = repositories_.find(name);
  if (it == repositories_.end()) {
    throw CatalogError("unknown repository '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Catalog::repository_names() const {
  return repository_order_;
}

void Catalog::define_extent(MetaExtent extent) {
  ++version_;
  if (extent.name.empty()) throw CatalogError("extent needs a name");
  if (extents_.contains(extent.name)) {
    throw CatalogError("extent '" + extent.name + "' is already defined");
  }
  if (views_.contains(extent.name)) {
    throw CatalogError("extent '" + extent.name + "' collides with a view");
  }
  if (types_.type_for_implicit_extent(extent.name) != nullptr) {
    throw CatalogError("extent '" + extent.name +
                       "' collides with an implicit extent");
  }
  types_.get(extent.interface);  // must exist
  if (!has_repository(extent.repository)) {
    throw CatalogError("extent '" + extent.name +
                       "' references unknown repository '" +
                       extent.repository + "'");
  }
  if (extent.wrapper.empty()) {
    throw CatalogError("extent '" + extent.name + "' needs a wrapper");
  }
  extent_order_.push_back(extent.name);
  extents_by_interface_[extent.interface].push_back(extent.name);
  extent_seq_[extent.name] = next_extent_seq_++;
  extents_.emplace(extent.name, std::move(extent));
}

void Catalog::drop_extent(const std::string& name) {
  ++version_;
  auto it = extents_.find(name);
  if (it == extents_.end()) {
    throw CatalogError("cannot drop unknown extent '" + name + "'");
  }
  auto by_interface = extents_by_interface_.find(it->second.interface);
  if (by_interface != extents_by_interface_.end()) {
    std::erase(by_interface->second, name);
    if (by_interface->second.empty()) {
      extents_by_interface_.erase(by_interface);
    }
  }
  extent_seq_.erase(name);
  extents_.erase(it);
  std::erase(extent_order_, name);
}

bool Catalog::has_extent(const std::string& name) const {
  return extents_.contains(name);
}

const MetaExtent& Catalog::extent(const std::string& name) const {
  auto it = extents_.find(name);
  if (it == extents_.end()) {
    throw CatalogError("unknown extent '" + name + "'");
  }
  return it->second;
}

std::vector<const MetaExtent*> Catalog::extents_of_type(
    const std::string& type) const {
  std::vector<const MetaExtent*> out;
  auto it = extents_by_interface_.find(type);
  if (it == extents_by_interface_.end()) return out;
  out.reserve(it->second.size());
  for (const std::string& name : it->second) {
    out.push_back(&extents_.at(name));
  }
  return out;
}

std::vector<const MetaExtent*> Catalog::extents_of_closure(
    const std::string& type) const {
  // Gather per-interface (indexed), then restore registration order
  // via sequence numbers — matching extents only, never a full scan.
  std::vector<const MetaExtent*> out;
  for (const std::string& sub : types_.with_subtypes(type)) {
    auto it = extents_by_interface_.find(sub);
    if (it == extents_by_interface_.end()) continue;
    for (const std::string& name : it->second) {
      out.push_back(&extents_.at(name));
    }
  }
  std::sort(out.begin(), out.end(),
            [this](const MetaExtent* a, const MetaExtent* b) {
              return extent_seq_.at(a->name) < extent_seq_.at(b->name);
            });
  return out;
}

Value Catalog::metaextent_rows() const {
  std::vector<Value> rows;
  rows.reserve(extent_order_.size());
  for (const std::string& name : extent_order_) {
    const MetaExtent& extent = extents_.at(name);
    rows.push_back(Value::strct({
        {"name", Value::string(extent.name)},
        {"interface", Value::string(extent.interface)},
        {"wrapper", Value::string(extent.wrapper)},
        {"repository", Value::string(extent.repository)},
        {"map", Value::string(extent.map.to_odl(extent.name))},
    }));
  }
  return Value::bag(std::move(rows));
}

void Catalog::define_view(std::string name, oql::ExprPtr query) {
  ++version_;
  if (name.empty() || query == nullptr) {
    throw CatalogError("view needs a name and a query");
  }
  if (views_.contains(name)) {
    throw CatalogError("view '" + name + "' is already defined");
  }
  if (extents_.contains(name) ||
      types_.type_for_implicit_extent(name) != nullptr) {
    throw CatalogError("view '" + name + "' collides with an extent");
  }
  check_view_acyclic(name, query);
  view_order_.push_back(name);
  views_.emplace(std::move(name), std::move(query));
}

bool Catalog::has_view(const std::string& name) const {
  return views_.contains(name);
}

const oql::ExprPtr& Catalog::view(const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    throw CatalogError("unknown view '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Catalog::view_names() const { return view_order_; }

void Catalog::check_view_acyclic(const std::string& name,
                                 const oql::ExprPtr& query) const {
  // Follow view references from `query`; reaching `name` is a cycle.
  std::set<std::string> visited;
  std::vector<std::string> frontier;
  for (const std::string& free : oql::free_names(query)) {
    frontier.push_back(free);
  }
  while (!frontier.empty()) {
    std::string current = frontier.back();
    frontier.pop_back();
    if (current == name) {
      throw CatalogError("view '" + name + "' would be cyclic");
    }
    if (!visited.insert(current).second) continue;
    auto it = views_.find(current);
    if (it == views_.end()) continue;
    for (const std::string& free : oql::free_names(it->second)) {
      frontier.push_back(free);
    }
  }
}

Catalog::NameKind Catalog::classify(const std::string& name) const {
  if (views_.contains(name)) return NameKind::View;
  if (types_.type_for_implicit_extent(name) != nullptr) {
    return NameKind::ImplicitExtent;
  }
  if (extents_.contains(name)) return NameKind::Extent;
  if (name == "metaextent") return NameKind::MetaExtentTable;
  return NameKind::Unknown;
}

}  // namespace disco::catalog
