// The mediator's internal database (§3: "The DISCO mediator contains an
// internal database. The internal database records information on data
// sources, types, interfaces, and views").
//
// It holds:
//   * the type registry (interfaces + subtype lattice),
//   * Repository objects — data sources are first-class objects (§2.1),
//   * MetaExtent rows — one per `extent e of T wrapper w repository r`
//     declaration, queryable through the metaextent_rows() collection
//     exactly as §2.1's MetaExtent interface promises,
//   * views (`define v as <query>`), with cycle detection ("A view can
//     reference other views, as long as the references are not cyclic",
//     §2.3).
//
// Wrapper *objects* are not stored here — the catalog records wrapper
// names; the mediator (core/) owns the name -> Wrapper binding, keeping
// this module free of execution concerns.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/type_map.hpp"
#include "oql/ast.hpp"
#include "types/type_registry.hpp"

namespace disco::catalog {

/// A Repository object (§2.1):
///   r0 := Repository(host="rodin", name="db", address="123.45.6.7")
/// `name` doubles as the network endpoint identity in the simulation.
struct Repository {
  std::string name;     ///< the variable it was bound to (r0)
  std::string host;
  std::string db_name;
  std::string address;
};

/// One row of the MetaExtent meta-type (§2.1).
struct MetaExtent {
  std::string name;        ///< extent name (person0)
  std::string interface;   ///< mediator type (Person)
  std::string wrapper;     ///< wrapper object name (w0)
  std::string repository;  ///< repository object name (r0)
  TypeMap map;             ///< local transformation map (§2.2.2)
};

struct ViewDef {
  std::string name;
  oql::ExprPtr query;
};

class Catalog {
 public:
  /// Mutable access bumps the version: defining types changes what
  /// queries mean.
  TypeRegistry& types() {
    ++version_;
    return types_;
  }
  const TypeRegistry& types() const { return types_; }

  // -- repositories ----------------------------------------------------------
  void define_repository(Repository repository);
  bool has_repository(const std::string& name) const;
  const Repository& repository(const std::string& name) const;
  std::vector<std::string> repository_names() const;

  // -- extents ---------------------------------------------------------------
  /// Registers an extent; validates that the interface and repository
  /// exist and the extent name is fresh (both as extent and as implicit
  /// extent or view).
  void define_extent(MetaExtent extent);
  void drop_extent(const std::string& name);
  bool has_extent(const std::string& name) const;
  const MetaExtent& extent(const std::string& name) const;
  size_t extent_count() const { return extents_.size(); }
  /// Every registered extent name, in registration order.
  const std::vector<std::string>& extent_names() const {
    return extent_order_;
  }

  /// Extents registered for exactly `type` (§2.2.1: "the extent of a type
  /// does not automatically reference the extents of the sub-types").
  std::vector<const MetaExtent*> extents_of_type(
      const std::string& type) const;
  /// Extents of the type and all its subtypes — the `type*` closure.
  std::vector<const MetaExtent*> extents_of_closure(
      const std::string& type) const;

  /// The queryable metaextent collection (§2.1): a bag of structs with
  /// fields name, interface, wrapper, repository.
  Value metaextent_rows() const;

  // -- views -----------------------------------------------------------------
  /// Registers `define name as query`; rejects duplicates and cycles.
  void define_view(std::string name, oql::ExprPtr query);
  bool has_view(const std::string& name) const;
  const oql::ExprPtr& view(const std::string& name) const;
  std::vector<std::string> view_names() const;

  /// Monotone counter bumped by every schema change (type, repository,
  /// extent, view). Plan caches key on it: "the mediator must monitor
  /// updates to extents, and modify or recompute plans that are affected"
  /// (§3.3).
  uint64_t version() const { return version_; }

  /// Resolves what a free identifier in a query means, in priority order:
  /// view, implicit extent (via its interface), registered extent,
  /// the literal `metaextent` collection.
  enum class NameKind { View, ImplicitExtent, Extent, MetaExtentTable,
                        Unknown };
  NameKind classify(const std::string& name) const;

 private:
  void check_view_acyclic(const std::string& name,
                          const oql::ExprPtr& query) const;

  uint64_t version_ = 0;
  TypeRegistry types_;
  std::unordered_map<std::string, Repository> repositories_;
  std::vector<std::string> repository_order_;
  std::unordered_map<std::string, MetaExtent> extents_;
  std::vector<std::string> extent_order_;
  /// Secondary index: interface name -> extent names in registration
  /// order. Makes `extents_of_type` O(matching extents) instead of a
  /// scan over every registered extent — the difference between a
  /// 10-extent world and a 10,000-extent federation.
  std::unordered_map<std::string, std::vector<std::string>>
      extents_by_interface_;
  /// Registration sequence numbers so multi-interface lookups
  /// (subtype closures) can re-establish registration order without
  /// scanning `extent_order_`.
  std::unordered_map<std::string, uint64_t> extent_seq_;
  uint64_t next_extent_seq_ = 0;
  std::unordered_map<std::string, oql::ExprPtr> views_;
  std::vector<std::string> view_order_;
};

}  // namespace disco::catalog
