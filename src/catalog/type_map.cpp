#include "catalog/type_map.hpp"

#include "common/error.hpp"

namespace disco::catalog {

TypeMap::TypeMap(std::string source_relation,
                 std::vector<std::pair<std::string, std::string>> fields)
    : source_relation_(std::move(source_relation)),
      fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    for (size_t j = i + 1; j < fields_.size(); ++j) {
      if (fields_[i].first == fields_[j].first ||
          fields_[i].second == fields_[j].second) {
        throw CatalogError("type map has duplicate field mapping for '" +
                           fields_[i].first + "'/'" + fields_[i].second +
                           "'");
      }
    }
  }
}

std::string TypeMap::source_relation(const std::string& extent_name) const {
  return source_relation_.empty() ? extent_name : source_relation_;
}

std::string TypeMap::to_source_attribute(
    const std::string& mediator_name) const {
  for (const auto& [source, mediator] : fields_) {
    if (mediator == mediator_name) return source;
  }
  return mediator_name;
}

std::string TypeMap::to_mediator_attribute(
    const std::string& source_name) const {
  for (const auto& [source, mediator] : fields_) {
    if (source == source_name) return mediator;
  }
  return source_name;
}

Value TypeMap::rename_row_to_mediator(const Value& source_row) const {
  if (fields_.empty()) return source_row;
  std::vector<std::pair<std::string, Value>> renamed;
  renamed.reserve(source_row.fields().size());
  for (const auto& [name, value] : source_row.fields()) {
    renamed.emplace_back(to_mediator_attribute(name), value);
  }
  return Value::strct(std::move(renamed));
}

std::string TypeMap::to_odl(const std::string& extent_name) const {
  if (is_identity()) return "";
  std::string out = "((" + source_relation(extent_name) + "=" + extent_name +
                    ")";
  for (const auto& [source, mediator] : fields_) {
    out += ",(" + source + "=" + mediator + ")";
  }
  out += ")";
  return out;
}

}  // namespace disco::catalog
