#include "catalog/type_map.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace disco::catalog {

TypeMap::TypeMap(std::string source_relation,
                 std::vector<std::pair<std::string, std::string>> fields)
    : source_relation_(std::move(source_relation)),
      fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    for (size_t j = i + 1; j < fields_.size(); ++j) {
      if (fields_[i].first == fields_[j].first ||
          fields_[i].second == fields_[j].second) {
        throw CatalogError("type map has duplicate field mapping for '" +
                           fields_[i].first + "'/'" + fields_[i].second +
                           "'");
      }
    }
  }
}

std::string TypeMap::source_relation(const std::string& extent_name) const {
  return source_relation_.empty() ? extent_name : source_relation_;
}

std::string TypeMap::to_source_attribute(
    const std::string& mediator_name) const {
  for (const auto& [source, mediator] : fields_) {
    if (mediator == mediator_name) return source;
  }
  return mediator_name;
}

std::string TypeMap::to_mediator_attribute(
    const std::string& source_name) const {
  for (const auto& [source, mediator] : fields_) {
    if (source == source_name) return mediator;
  }
  return source_name;
}

Value TypeMap::rename_row_to_mediator(const Value& source_row) const {
  if (fields_.empty()) return source_row;
  std::vector<std::pair<std::string, Value>> renamed;
  renamed.reserve(source_row.fields().size());
  for (const auto& [name, value] : source_row.fields()) {
    renamed.emplace_back(to_mediator_attribute(name), value);
  }
  return Value::strct(std::move(renamed));
}

std::string TypeMap::to_odl(const std::string& extent_name) const {
  if (is_identity()) return "";
  std::string out = "((" + source_relation(extent_name) + "=" + extent_name +
                    ")";
  for (const auto& [source, mediator] : fields_) {
    // Source sides that are path expressions with steps the ODL lexer
    // cannot spell bare (array steps like items[*].id) print quoted, the
    // same form map_clause parses back.
    const bool plain =
        !source.empty() &&
        std::all_of(source.begin(), source.end(), [](unsigned char c) {
          return std::isalnum(c) != 0 || c == '_' || c == '.';
        });
    out += ",(" + (plain ? source : "\"" + source + "\"") + "=" + mediator +
           ")";
  }
  out += ")";
  return out;
}

}  // namespace disco::catalog
