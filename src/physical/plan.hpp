// Physical plans (§3.3 of the paper).
//
// "The logical expression is transformed into a physical expression using
//  implementation rules. The submit logical operator is implemented by the
//  exec physical algorithm."
//
// The paper's example physical expression
//   mkunion(exec(field(r0), project(name, get(person0))),
//           mkproj(name, exec(field(r1), get(person1))))
// maps to: Union(Exec{r0, project(...)}, Project(Exec{r1, get(...)})).
//
// Every node records the *logical* expression it computes. That is the
// mechanism behind §4: "each physical operation has a corresponding
// logical operation, and each logical operation has a corresponding OQL
// expression" — when an exec times out, the runtime lifts the node's
// logical form into the partial answer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebra/logical.hpp"

namespace disco::physical {

enum class POp {
  Exec,     ///< call a wrapper: implements submit (§3.3)
  Const,    ///< materialized data
  Filter,   ///< mediator-side predicate
  Project,  ///< mediator-side projection (the paper's mkproj)
  HashJoin,
  MergeJoin,  ///< §3.1 names merge-join as a DISCO physical algorithm
  NestedLoopJoin,
  /// Bind join (extension; §6.2 "future work ... extend the logical
  /// model"): evaluate the build side, then ship its distinct join keys
  /// into the probe side's submit as a disjunctive filter. The closest
  /// expressible cousin of the semijoin the paper notes `submit` cannot
  /// perform (it never moves data *between* sources — the keys travel
  /// mediator -> source, which RPC semantics allows).
  BindJoin,
  Union,    ///< the paper's mkunion
};

const char* to_string(POp op);

struct Physical;
using PhysicalPtr = std::shared_ptr<const Physical>;

struct Physical {
  POp op;

  /// Logical equivalent of this whole subtree; set by the planner, used
  /// for partial-answer reconstruction and the cost history key.
  algebra::LogicalPtr logical;

  // Exec
  std::string repository;
  std::string wrapper;            ///< wrapper object name
  algebra::LogicalPtr remote;     ///< expression shipped to the wrapper

  // Const
  Value data;

  // Filter / Join predicate; Project projection (OQL over env vars).
  oql::ExprPtr predicate;
  oql::ExprPtr projection;
  bool distinct = false;

  // Hash join / bind join key: var-attribute paths.
  oql::ExprPtr left_key, right_key;
  /// BindJoin: past this many distinct build-side keys the probe side is
  /// fetched whole instead (the disjunction would dwarf the data).
  size_t max_bind_keys = 100;
  /// BindJoin: canonical shape of the probe submit — `remote` with a
  /// single placeholder key bound on `right_key`, mirroring how the
  /// runtime composes the real probe. Cost-history observations of the
  /// probe are recorded under this shape (not under `remote`), so the
  /// optimizer can later estimate "what does one bound probe cost at
  /// this source" — the §3.3 closed loop that notices indexed probes
  /// returning in near-constant time.
  algebra::LogicalPtr probe_shape;

  PhysicalPtr child;
  PhysicalPtr left, right;
  std::vector<PhysicalPtr> children;

  /// Estimated cost, filled in by the optimizer (for explain output).
  double estimated_time_s = 0;
  double estimated_rows = 0;
};

PhysicalPtr make_exec(std::string repository, std::string wrapper,
                      algebra::LogicalPtr remote,
                      algebra::LogicalPtr logical);
PhysicalPtr make_const(Value data, algebra::LogicalPtr logical);
PhysicalPtr make_filter(PhysicalPtr child, oql::ExprPtr predicate,
                        algebra::LogicalPtr logical);
PhysicalPtr make_project(PhysicalPtr child, oql::ExprPtr projection,
                         bool distinct, algebra::LogicalPtr logical);
PhysicalPtr make_hash_join(PhysicalPtr left, PhysicalPtr right,
                           oql::ExprPtr left_key, oql::ExprPtr right_key,
                           oql::ExprPtr residual_predicate,
                           algebra::LogicalPtr logical);
PhysicalPtr make_merge_join(PhysicalPtr left, PhysicalPtr right,
                            oql::ExprPtr left_key, oql::ExprPtr right_key,
                            oql::ExprPtr residual_predicate,
                            algebra::LogicalPtr logical);
PhysicalPtr make_nl_join(PhysicalPtr left, PhysicalPtr right,
                         oql::ExprPtr predicate, algebra::LogicalPtr logical);
/// Bind join: `remote` is the probe side's base expression (a get, or a
/// filter over a get, in mediator name space) executed at
/// `repository`/`wrapper` with the build side's keys appended as a
/// disjunctive equality filter on `right_key`. `probe_shape` (may be
/// null) is the canonical one-key probe expression used as the cost
/// history record key for probe observations.
PhysicalPtr make_bind_join(PhysicalPtr left, std::string repository,
                           std::string wrapper, algebra::LogicalPtr remote,
                           algebra::LogicalPtr probe_shape,
                           oql::ExprPtr left_key, oql::ExprPtr right_key,
                           oql::ExprPtr residual_predicate,
                           algebra::LogicalPtr logical);
PhysicalPtr make_union(std::vector<PhysicalPtr> children,
                       algebra::LogicalPtr logical);

/// "mkunion(exec(field(r0), ...), mkproj(...))"-style text for explain
/// output and tests.
std::string to_physical_string(const PhysicalPtr& plan);

}  // namespace disco::physical
