#include "physical/plan.hpp"

#include "common/error.hpp"
#include "oql/printer.hpp"

namespace disco::physical {

const char* to_string(POp op) {
  switch (op) {
    case POp::Exec:
      return "exec";
    case POp::Const:
      return "mkconst";
    case POp::Filter:
      return "mkfilter";
    case POp::Project:
      return "mkproj";
    case POp::HashJoin:
      return "hashjoin";
    case POp::MergeJoin:
      return "mergejoin";
    case POp::NestedLoopJoin:
      return "nljoin";
    case POp::BindJoin:
      return "bindjoin";
    case POp::Union:
      return "mkunion";
  }
  return "?";
}

namespace {

std::shared_ptr<Physical> base(POp op, algebra::LogicalPtr logical) {
  internal_check(logical != nullptr, "physical node needs its logical form");
  auto node = std::make_shared<Physical>();
  node->op = op;
  node->logical = std::move(logical);
  return node;
}

}  // namespace

PhysicalPtr make_exec(std::string repository, std::string wrapper,
                      algebra::LogicalPtr remote,
                      algebra::LogicalPtr logical) {
  internal_check(remote != nullptr, "exec needs a remote expression");
  auto node = base(POp::Exec, std::move(logical));
  node->repository = std::move(repository);
  node->wrapper = std::move(wrapper);
  node->remote = std::move(remote);
  return node;
}

PhysicalPtr make_const(Value data, algebra::LogicalPtr logical) {
  auto node = base(POp::Const, std::move(logical));
  node->data = std::move(data);
  return node;
}

PhysicalPtr make_filter(PhysicalPtr child, oql::ExprPtr predicate,
                        algebra::LogicalPtr logical) {
  internal_check(child != nullptr && predicate != nullptr,
                 "mkfilter needs child and predicate");
  auto node = base(POp::Filter, std::move(logical));
  node->child = std::move(child);
  node->predicate = std::move(predicate);
  return node;
}

PhysicalPtr make_project(PhysicalPtr child, oql::ExprPtr projection,
                         bool distinct, algebra::LogicalPtr logical) {
  internal_check(child != nullptr && projection != nullptr,
                 "mkproj needs child and projection");
  auto node = base(POp::Project, std::move(logical));
  node->child = std::move(child);
  node->projection = std::move(projection);
  node->distinct = distinct;
  return node;
}

PhysicalPtr make_hash_join(PhysicalPtr left, PhysicalPtr right,
                           oql::ExprPtr left_key, oql::ExprPtr right_key,
                           oql::ExprPtr residual_predicate,
                           algebra::LogicalPtr logical) {
  internal_check(left != nullptr && right != nullptr, "join needs children");
  internal_check(left_key != nullptr && right_key != nullptr,
                 "hash join needs key expressions");
  auto node = base(POp::HashJoin, std::move(logical));
  node->left = std::move(left);
  node->right = std::move(right);
  node->left_key = std::move(left_key);
  node->right_key = std::move(right_key);
  node->predicate = std::move(residual_predicate);
  return node;
}

PhysicalPtr make_merge_join(PhysicalPtr left, PhysicalPtr right,
                            oql::ExprPtr left_key, oql::ExprPtr right_key,
                            oql::ExprPtr residual_predicate,
                            algebra::LogicalPtr logical) {
  internal_check(left != nullptr && right != nullptr, "join needs children");
  internal_check(left_key != nullptr && right_key != nullptr,
                 "merge join needs key expressions");
  auto node = base(POp::MergeJoin, std::move(logical));
  node->left = std::move(left);
  node->right = std::move(right);
  node->left_key = std::move(left_key);
  node->right_key = std::move(right_key);
  node->predicate = std::move(residual_predicate);
  return node;
}

PhysicalPtr make_nl_join(PhysicalPtr left, PhysicalPtr right,
                         oql::ExprPtr predicate,
                         algebra::LogicalPtr logical) {
  internal_check(left != nullptr && right != nullptr, "join needs children");
  auto node = base(POp::NestedLoopJoin, std::move(logical));
  node->left = std::move(left);
  node->right = std::move(right);
  node->predicate = std::move(predicate);
  return node;
}

PhysicalPtr make_bind_join(PhysicalPtr left, std::string repository,
                           std::string wrapper, algebra::LogicalPtr remote,
                           algebra::LogicalPtr probe_shape,
                           oql::ExprPtr left_key, oql::ExprPtr right_key,
                           oql::ExprPtr residual_predicate,
                           algebra::LogicalPtr logical) {
  internal_check(left != nullptr && remote != nullptr,
                 "bind join needs a build side and a probe template");
  internal_check(left_key != nullptr && right_key != nullptr,
                 "bind join needs key expressions");
  auto node = base(POp::BindJoin, std::move(logical));
  node->left = std::move(left);
  node->repository = std::move(repository);
  node->wrapper = std::move(wrapper);
  node->remote = std::move(remote);
  node->probe_shape = std::move(probe_shape);
  node->left_key = std::move(left_key);
  node->right_key = std::move(right_key);
  node->predicate = std::move(residual_predicate);
  return node;
}

PhysicalPtr make_union(std::vector<PhysicalPtr> children,
                       algebra::LogicalPtr logical) {
  internal_check(!children.empty(), "mkunion needs children");
  if (children.size() == 1) return children.front();
  auto node = base(POp::Union, std::move(logical));
  node->children = std::move(children);
  return node;
}

namespace {

void render(const PhysicalPtr& plan, std::string& out) {
  switch (plan->op) {
    case POp::Exec:
      // The paper writes exec(field(r0), <expr>): field is the physical
      // algorithm fetching the repository object itself.
      out += "exec(field(" + plan->repository + "), " +
             algebra::to_algebra_string(plan->remote) + ")";
      return;
    case POp::Const:
      out += "mkconst(" + plan->data.to_oql() + ")";
      return;
    case POp::Filter:
      out += "mkfilter(" + oql::to_oql(plan->predicate) + ", ";
      render(plan->child, out);
      out += ")";
      return;
    case POp::Project:
      out += std::string("mkproj(") + (plan->distinct ? "distinct " : "") +
             oql::to_oql(plan->projection) + ", ";
      render(plan->child, out);
      out += ")";
      return;
    case POp::HashJoin:
    case POp::MergeJoin:
      out += std::string(plan->op == POp::HashJoin ? "hashjoin("
                                                   : "mergejoin(") +
             oql::to_oql(plan->left_key) + " = " +
             oql::to_oql(plan->right_key) + ", ";
      render(plan->left, out);
      out += ", ";
      render(plan->right, out);
      if (plan->predicate != nullptr) {
        out += ", " + oql::to_oql(plan->predicate);
      }
      out += ")";
      return;
    case POp::NestedLoopJoin:
      out += "nljoin(";
      render(plan->left, out);
      out += ", ";
      render(plan->right, out);
      if (plan->predicate != nullptr) {
        out += ", " + oql::to_oql(plan->predicate);
      }
      out += ")";
      return;
    case POp::BindJoin:
      out += "bindjoin(" + oql::to_oql(plan->left_key) + " = " +
             oql::to_oql(plan->right_key) + ", ";
      render(plan->left, out);
      out += ", exec(field(" + plan->repository + "), " +
             algebra::to_algebra_string(plan->remote) + " + keys)";
      if (plan->predicate != nullptr) {
        out += ", " + oql::to_oql(plan->predicate);
      }
      out += ")";
      return;
    case POp::Union:
      out += "mkunion(";
      for (size_t i = 0; i < plan->children.size(); ++i) {
        if (i > 0) out += ", ";
        render(plan->children[i], out);
      }
      out += ")";
      return;
  }
  throw InternalError("corrupt physical plan");
}

}  // namespace

std::string to_physical_string(const PhysicalPtr& plan) {
  internal_check(plan != nullptr, "cannot render a null plan");
  std::string out;
  render(plan, out);
  return out;
}

}  // namespace disco::physical
