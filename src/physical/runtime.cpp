#include "physical/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/error.hpp"
#include "oql/printer.hpp"

namespace disco::physical {

Runtime::Runtime(ExecContext context)
    : context_(std::move(context)), evaluator_(context_.resolver) {
  internal_check(context_.catalog != nullptr && context_.network != nullptr &&
                     context_.clock != nullptr,
                 "runtime needs catalog, network and clock");
  internal_check(static_cast<bool>(context_.wrapper_by_name),
                 "runtime needs a wrapper resolver");
}

void Runtime::ensure_rows(Outcome* out) {
  if (!out->batch.has_value()) return;
  std::vector<Value> rows = vec::to_rows(*out->batch);
  out->batch.reset();
  if (out->data.empty()) {
    out->data = std::move(rows);
  } else {
    out->data.insert(out->data.end(), std::make_move_iterator(rows.begin()),
                     std::make_move_iterator(rows.end()));
  }
}

Runtime::Outcome Runtime::make_leaf_outcome(const std::vector<Value>& rows) {
  Outcome out;
  if (context_.vec.enabled) {
    std::optional<vec::Table> table =
        vec::from_rows(rows, context_.vec.batch_rows);
    if (table.has_value()) {
      stats_.vec_batches += table->batches.size();
      stats_.vec_rows += table->rows();
      out.batch = std::move(table);
      return out;
    }
    ++stats_.vec_fallbacks;
  }
  out.data = rows;
  return out;
}

RunResult Runtime::run(const PhysicalPtr& plan) {
  internal_check(plan != nullptr, "cannot run a null plan");
  stats_ = RunStats{};
  denied_.clear();
  issue_time_ = context_.clock->now();
  max_latency_ = 0;
  any_blocked_ = false;

  const auto wall_start = std::chrono::steady_clock::now();
  Outcome outcome;
  if (wall_clock_mode()) {
    prefetch_execs(plan);
    try {
      outcome = eval(plan);
    } catch (...) {
      drain_prefetched();
      throw;
    }
    drain_prefetched();
  } else {
    outcome = eval(plan);
  }

  double elapsed;
  if (wall_clock_mode()) {
    // Wall-clock mode: the calls genuinely overlapped on the pool and the
    // latency waits really happened; elapsed time is simply measured.
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            wall_start)
                  .count();
  } else {
    // §4 time accounting: parallel calls; if anything blocked we waited
    // for the whole designated period.
    elapsed = any_blocked_ && std::isfinite(context_.deadline_s)
                  ? context_.deadline_s
                  : max_latency_;
  }
  context_.clock->advance(elapsed);
  stats_.elapsed_s = elapsed;

  ensure_rows(&outcome);
  RunResult result;
  result.data = Value::bag(std::move(outcome.data));
  result.residuals = std::move(outcome.residuals);
  result.stats = stats_;
  return result;
}

void Runtime::prefetch_execs(const PhysicalPtr& plan) {
  switch (plan->op) {
    case POp::Exec: {
      PhysicalPtr node = plan;  // keep the node alive inside the task
      if (prefetched_.contains(node.get()) || denied_.contains(node.get())) {
        return;  // shared subplan
      }
      if (context_.admit_source &&
          !context_.admit_source(node->repository)) {
        // Open circuit: never launched; call_source emits the residual.
        denied_.insert(node.get());
        return;
      }
      prefetched_.emplace(
          node.get(), context_.dispatcher->async([this, node] {
            return fetch_from_source(node->repository, node->wrapper,
                                     node->remote);
          }));
      return;
    }
    case POp::Filter:
    case POp::Project:
      prefetch_execs(plan->child);
      return;
    case POp::HashJoin:
    case POp::MergeJoin:
    case POp::NestedLoopJoin:
      prefetch_execs(plan->left);
      prefetch_execs(plan->right);
      return;
    case POp::BindJoin:
      // Only the build side: the probe expression depends on the build
      // side's keys and is dispatched when eval_bind_join reaches it.
      prefetch_execs(plan->left);
      return;
    case POp::Union:
      for (const PhysicalPtr& child : plan->children) prefetch_execs(child);
      return;
    case POp::Const:
      return;
  }
}

void Runtime::drain_prefetched() noexcept {
  for (auto& [node, future] : prefetched_) {
    if (future.valid()) future.wait();
  }
  prefetched_.clear();
}

Runtime::Outcome Runtime::eval(const PhysicalPtr& node) {
  switch (node->op) {
    case POp::Exec:
      return eval_exec(*node);
    case POp::Const:
      return make_leaf_outcome(node->data.items());
    case POp::Filter: {
      Outcome in = eval(node->child);
      Outcome out;
      if (in.batch.has_value()) {
        std::optional<vec::PredicateProgram> program =
            vec::compile_predicate(node->predicate, in.batch->schema);
        if (program.has_value()) {
          obs::ScopedRate rate(context_.metrics, "vec.filter");
          rate.add_rows(in.batch->rows());
          stats_.vec_rows += in.batch->rows();
          out.batch = vec::filter_table(*in.batch, *program);
          stats_.vec_batches += out.batch->batches.size();
        } else {
          ++stats_.vec_fallbacks;
          ensure_rows(&in);
        }
      }
      if (!in.batch.has_value()) {
        for (const Value& env : in.data) {
          oql::Env scope;
          for (const auto& [var, row] : env.fields()) scope.bind(var, row);
          if (evaluator_.eval(node->predicate, scope).as_bool()) {
            out.data.push_back(env);
          }
        }
      }
      // filter(union(d, r)) = union(filter(d), filter(r)).
      for (const algebra::LogicalPtr& residual : in.residuals) {
        out.residuals.push_back(
            algebra::filter(residual, node->predicate));
      }
      return out;
    }
    case POp::Project: {
      Outcome in = eval(node->child);
      Outcome out;
      if (in.batch.has_value()) {
        std::optional<vec::ProjectionProgram> program =
            vec::compile_projection(node->projection, in.batch->schema);
        if (program.has_value()) {
          obs::ScopedRate rate(context_.metrics, "vec.project");
          rate.add_rows(in.batch->rows());
          stats_.vec_rows += in.batch->rows();
          vec::Table projected = vec::project_table(*in.batch, *program);
          if (node->distinct) {
            // First-seen dedup; the row path's Value::set sorts instead.
            // Same multiset either way, which is all bag answers expose.
            projected =
                vec::distinct_table(projected, context_.vec.batch_rows);
          }
          stats_.vec_batches += projected.batches.size();
          out.batch = std::move(projected);
        } else {
          ++stats_.vec_fallbacks;
          ensure_rows(&in);
        }
      }
      if (!in.batch.has_value()) {
        out.data.reserve(in.data.size());
        for (const Value& env : in.data) {
          oql::Env scope;
          for (const auto& [var, row] : env.fields()) scope.bind(var, row);
          out.data.push_back(evaluator_.eval(node->projection, scope));
        }
        if (node->distinct) {
          out.data = Value::set(std::move(out.data)).items();
        }
      }
      for (const algebra::LogicalPtr& residual : in.residuals) {
        out.residuals.push_back(
            algebra::project(residual, node->projection, node->distinct));
      }
      return out;
    }
    case POp::HashJoin:
    case POp::MergeJoin:
    case POp::NestedLoopJoin:
      return eval_join(*node);
    case POp::BindJoin:
      return eval_bind_join(*node);
    case POp::Union: {
      Outcome out;
      for (const PhysicalPtr& child : node->children) {
        Outcome part = eval(child);
        out.residuals.insert(out.residuals.end(), part.residuals.begin(),
                             part.residuals.end());
        // Batch-wise union merge: splice the part's batches onto the
        // accumulated table (O(#batches), no row copies) while every
        // part stays columnar with one layout; first mismatch falls the
        // whole union back to row concatenation.
        if (part.batch.has_value() && out.data.empty()) {
          if (!out.batch.has_value()) {
            out.batch = std::move(part.batch);
            continue;
          } else {
            obs::ScopedRate rate(context_.metrics, "vec.union");
            rate.add_rows(part.batch->rows());
            stats_.vec_rows += part.batch->rows();
            if (vec::concat_tables(&*out.batch, std::move(*part.batch))) {
              continue;
            }
            ++stats_.vec_fallbacks;
          }
        }
        ensure_rows(&out);
        ensure_rows(&part);
        out.data.insert(out.data.end(),
                        std::make_move_iterator(part.data.begin()),
                        std::make_move_iterator(part.data.end()));
      }
      return out;
    }
  }
  throw InternalError("corrupt physical plan in runtime");
}

Runtime::Fetch Runtime::fetch_from_source(const std::string& repository_name,
                                          const std::string& wrapper_name,
                                          const algebra::LogicalPtr& remote) {
  if (context_.cache == nullptr) {
    return fetch_direct(repository_name, wrapper_name, remote);
  }
  cache::ResultCache::Lookup lookup =
      context_.cache->get_or_begin(repository_name, remote);
  if (lookup.kind == cache::ResultCache::LookupKind::Lead) {
    // This thread fetches for everyone waiting on the same submit. Only
    // a successful reply is published; a refusal or unavailable outcome
    // abandons the ticket (Ticket dtor) and waiters re-race — residual
    // outcomes are never cached.
    Fetch fetch = fetch_direct(repository_name, wrapper_name, remote);
    if (fetch.submit.status == wrapper::SubmitResult::Status::Ok &&
        fetch.net.available) {
      cache::CachedResult cached;
      cached.data = fetch.submit.data;
      cached.source_latency_s = fetch.net.latency_s;
      context_.cache->publish(lookup.ticket, std::move(cached));
    }
    return fetch;
  }
  // Hit or Coalesced: the reply is shared-immutable, so handing the same
  // Value to many query threads is safe. Zero network latency — a cached
  // answer is faster than the fastest source.
  Fetch fetch;
  fetch.submit = wrapper::SubmitResult::ok(lookup.result->data);
  fetch.net.available = true;
  fetch.net.attempts = 0;
  fetch.net.latency_s = 0;
  const bool coalesced =
      lookup.kind == cache::ResultCache::LookupKind::Coalesced;
  fetch.served = coalesced ? Fetch::Served::Coalesced : Fetch::Served::CacheHit;
  if (coalesced && context_.dispatcher != nullptr) {
    context_.dispatcher->metrics().on_coalesced();
  }
  if (context_.obs) {
    const uint64_t event =
        context_.obs.trace->instant(context_.obs.span, "cache_hit", "cache");
    context_.obs.trace->tag(event, "repository", repository_name);
    context_.obs.trace->tag(event, "remote",
                            algebra::to_algebra_string(remote));
    if (coalesced) context_.obs.trace->tag(event, "coalesced", "true");
  }
  return fetch;
}

Runtime::Fetch Runtime::fetch_direct(const std::string& repository_name,
                                     const std::string& wrapper_name,
                                     const algebra::LogicalPtr& remote) {
  const catalog::Repository& repository =
      context_.catalog->repository(repository_name);
  wrapper::Wrapper* wrapper = context_.wrapper_by_name(wrapper_name);
  internal_check(wrapper != nullptr,
                 "no wrapper object named '" + wrapper_name + "'");

  // One span per source call, recorded on whatever thread runs the call
  // (a pool thread in wall-clock mode) — the trace's per-thread lanes
  // show dispatch overlap directly.
  obs::ScopedSpan span(context_.obs, "exec", "exec");
  if (span) {
    span.tag("repository", repository_name);
    span.tag("wrapper", wrapper_name);
    span.tag("remote", algebra::to_algebra_string(remote));
    if (std::isfinite(context_.deadline_s)) {
      span.tag("deadline_s", context_.deadline_s);
    }
  }

  // Simulation note: the wrapper computes the reply first so that the
  // network call can price the transfer by its row count; if the source
  // then turns out to be unreachable (or the reply would land past the
  // deadline) the computed data is discarded and the exec is classified
  // unavailable (§4). Only simulated work is wasted.
  wrapper::BindingMap bindings =
      wrapper::bindings_for(remote, *context_.catalog);
  Fetch fetch;
  fetch.submit = wrapper->submit(repository, remote, bindings);
  if (fetch.submit.status == wrapper::SubmitResult::Status::Refused) {
    return fetch;  // call_source throws, on the query's own thread
  }

  size_t rows = fetch.submit.data.size();
  if (wall_clock_mode()) {
    // Per-source admission control (src/sched/): acquire this endpoint's
    // token before touching the dispatcher. Admission happens here — in
    // the leader-only fetch path — so a cache hit or a coalesced waiter
    // never holds a token. A shed admission converts the call into a §4
    // residual without any network attempt.
    double queued_s = 0;
    sched::QueryScheduler::Admission admission;
    if (context_.scheduler != nullptr) {
      admission = context_.scheduler->admit(
          repository_name, context_.query_id, context_.deadline_s);
      queued_s = admission.queued_s;
      if (span && queued_s > 0) span.tag("queued_s", queued_s);
      if (!admission.admitted) {
        fetch.shed = true;
        fetch.net.available = false;
        fetch.net.attempts = 0;
        if (context_.obs) {
          const uint64_t event =
              context_.obs.trace->instant(span.id(), "shed", "sched");
          context_.obs.trace->tag(event, "repository", repository_name);
          context_.obs.trace->tag(
              event, "reason",
              admission.shed_reason ==
                      sched::QueryScheduler::ShedReason::QueueFull
                  ? "queue_full"
                  : (admission.shed_reason ==
                             sched::QueryScheduler::ShedReason::Deadline
                         ? "queue_deadline"
                         : "drained"));
        }
        if (span) span.tag("outcome", "shed");
        return fetch;
      }
    }
    // Retry/backoff/deadline semantics live in the dispatcher; the wait
    // for the (scaled) simulated latency really happens. Time spent
    // queued counts against the query deadline.
    double remaining = context_.deadline_s;
    if (std::isfinite(remaining)) {
      remaining = std::max(0.0, remaining - queued_s);
    }
    fetch.net = context_.dispatcher->call(repository_name, rows, issue_time_,
                                          remaining, span.context());
    // admission.permit releases the token here (RAII), after the call.
    if (fetch.net.available) {
      fetch.net.latency_s += fetch.submit.compute_s;
    }
  } else {
    net::CallOutcome reply =
        context_.network->call(repository_name, rows, issue_time_);
    fetch.net.attempts = 1;
    // Source compute (the wrapper's opt-in cost model) delays the reply
    // exactly like wire time: it is part of the observed latency and
    // counts against the §4 deadline. Zero unless the wrapper opted in.
    fetch.net.latency_s = reply.latency_s + fetch.submit.compute_s;
    if (!reply.available) {
      fetch.net.available = false;
    } else if (fetch.net.latency_s > context_.deadline_s) {
      fetch.net.timed_out = true;
    } else {
      fetch.net.available = true;
    }
  }
  if (span) {
    span.tag("attempts", static_cast<uint64_t>(fetch.net.attempts));
    span.tag("sim_latency_s", fetch.net.latency_s);
    if (fetch.net.wall_s > 0) span.tag("wall_s", fetch.net.wall_s);
    span.tag("rows", static_cast<uint64_t>(
                         fetch.net.available ? rows : size_t{0}));
    span.tag("outcome", fetch.net.available
                            ? "ok"
                            : (fetch.net.timed_out ? "timeout"
                                                   : "unavailable"));
  }
  return fetch;
}

Runtime::Outcome Runtime::call_source(
    const Physical* origin, const std::string& repository_name,
    const std::string& wrapper_name, const algebra::LogicalPtr& remote,
    const algebra::LogicalPtr& logical_for_residual,
    const algebra::LogicalPtr& record_shape) {
  ++stats_.exec_calls;
  // Circuit-breaker admission (src/session/): a refused source turns
  // residual right here — no wrapper work, no network call, and crucially
  // no any_blocked_, so the query does not pay the §4 deadline wait for a
  // source already known to be down. admit_source is consulted exactly
  // once per call (at prefetch time in wall-clock mode, recorded in
  // denied_), because admission has trial side effects in HalfOpen.
  bool refused_by_breaker = false;
  Fetch fetch;
  auto it = origin != nullptr ? prefetched_.find(origin) : prefetched_.end();
  if (it != prefetched_.end()) {
    std::future<Fetch> future = std::move(it->second);
    prefetched_.erase(it);
    fetch = future.get();  // rethrows pool-thread exceptions here
  } else if (origin != nullptr && denied_.contains(origin)) {
    refused_by_breaker = true;
  } else if (context_.admit_source &&
             !context_.admit_source(repository_name)) {
    refused_by_breaker = true;
  } else {
    fetch = fetch_from_source(repository_name, wrapper_name, remote);
  }
  if (refused_by_breaker) {
    ++stats_.unavailable_calls;
    ++stats_.short_circuit_calls;
    if (context_.obs) {
      const uint64_t event = context_.obs.trace->instant(
          context_.obs.span, "short_circuit", "exec");
      context_.obs.trace->tag(event, "repository", repository_name);
      context_.obs.trace->tag(event, "remote",
                              algebra::to_algebra_string(remote));
    }
    Outcome out;
    out.residuals.push_back(logical_for_residual);
    return out;
  }
  if (fetch.submit.status == wrapper::SubmitResult::Status::Refused) {
    throw CapabilityError(
        "wrapper '" + wrapper_name + "' refused a checked expression: " +
        fetch.submit.detail);
  }
  // A cache-served reply made no new source observation: feeding it to
  // the health tracker or the cost history would fabricate a zero-latency
  // call, and its rows were validated when first fetched.
  const bool cache_served = fetch.served != Fetch::Served::Source;
  if (cache_served) {
    if (fetch.served == Fetch::Served::CacheHit) {
      ++stats_.cache_hits;
    } else {
      ++stats_.cache_coalesced;
    }
  }
  // A shed call never reached the network: reporting it to the health
  // tracker would fabricate an unavailability observation for a source
  // that is merely busy.
  if (context_.report_health && !cache_served && !fetch.shed) {
    context_.report_health(repository_name, fetch.net.available,
                           fetch.net.latency_s);
  }

  if (fetch.net.attempts > 1) {
    stats_.retry_attempts += fetch.net.attempts - 1;
  }
  if (!fetch.net.available) {
    ++stats_.unavailable_calls;
    if (fetch.shed) ++stats_.shed_calls;
    any_blocked_ = true;
    Outcome out;
    out.residuals.push_back(logical_for_residual);
    return out;
  }

  wrapper::SubmitResult result = std::move(fetch.submit);
  size_t rows = result.data.size();
  max_latency_ = std::max(max_latency_, fetch.net.latency_s);
  stats_.rows_fetched += rows;
  if (context_.record_exec && !cache_served) {
    context_.record_exec(repository_name,
                         record_shape != nullptr ? record_shape : remote,
                         fetch.net.latency_s, rows);
  }
  if (context_.validate_rows && !cache_served &&
      remote->op != algebra::LOp::Project) {
    // §2.1's run-time type check: every variable's rows must inhabit the
    // extent's interface. Project-topped replies carry computed values,
    // not typed rows, and are skipped. Map variables to interfaces by
    // walking the remote expression's get nodes.
    std::unordered_map<std::string, std::string> by_var;
    std::function<void(const algebra::LogicalPtr&)> collect =
        [&](const algebra::LogicalPtr& node) {
          switch (node->op) {
            case algebra::LOp::Get:
              by_var[node->var] =
                  context_.catalog->extent(node->extent).interface;
              return;
            case algebra::LOp::Filter:
              collect(node->child);
              return;
            case algebra::LOp::Join:
              collect(node->left);
              collect(node->right);
              return;
            default:
              return;
          }
        };
    collect(remote);
    for (const Value& env : result.data.items()) {
      for (const auto& [var, row] : env.fields()) {
        auto it = by_var.find(var);
        if (it == by_var.end()) continue;
        context_.catalog->types().check_row(it->second, row);
      }
    }
  }
  return make_leaf_outcome(result.data.items());
}

Runtime::Outcome Runtime::eval_exec(const Physical& node) {
  return call_source(&node, node.repository, node.wrapper, node.remote,
                     node.logical);
}

namespace {

/// Extracts the (var, attribute) of a hash-key path.
std::pair<std::string, std::string> key_parts(const oql::ExprPtr& key) {
  internal_check(key->kind == oql::ExprKind::Path &&
                     key->child->kind == oql::ExprKind::Ident,
                 "hash key must be var.attribute");
  return {key->child->name, key->name};
}

Value merge_envs(const Value& a, const Value& b) {
  std::vector<std::pair<std::string, Value>> fields = a.fields();
  fields.insert(fields.end(), b.fields().begin(), b.fields().end());
  return Value::strct(std::move(fields));
}

}  // namespace

Runtime::Outcome Runtime::eval_join(const Physical& node) {
  Outcome left = eval(node.left);
  Outcome right = eval(node.right);

  Outcome out;
  if (!left.residuals.empty() || !right.residuals.empty()) {
    // A join cannot keep half of its inputs: its logical form (which only
    // references extents) becomes the residual; fetched data for the
    // other side is dropped and will be refetched on resubmission. This
    // is the algebra's own limit: submit has RPC semantics and "cannot
    // accept data from another data source" (§3.2).
    out.residuals.push_back(node.logical);
    return out;
  }

  if (node.op == POp::HashJoin && left.batch.has_value() &&
      right.batch.has_value() &&
      left.batch->schema.shape == vec::RowShape::Env &&
      right.batch->schema.shape == vec::RowShape::Env) {
    auto [left_var, left_attr] = key_parts(node.left_key);
    auto [right_var, right_attr] = key_parts(node.right_key);
    const int left_col = left.batch->schema.index_of(left_var, left_attr);
    const int right_col =
        right.batch->schema.index_of(right_var, right_attr);
    bool vec_ok = left_col >= 0 && right_col >= 0;
    std::optional<vec::PredicateProgram> residual_program;
    if (vec_ok && node.predicate != nullptr) {
      vec::Schema merged;
      merged.shape = vec::RowShape::Env;
      merged.columns = left.batch->schema.columns;
      merged.columns.insert(merged.columns.end(),
                            right.batch->schema.columns.begin(),
                            right.batch->schema.columns.end());
      residual_program = vec::compile_predicate(node.predicate, merged);
      vec_ok = residual_program.has_value();
    }
    if (vec_ok) {
      obs::ScopedRate rate(context_.metrics, "vec.hashjoin");
      rate.add_rows(left.batch->rows() + right.batch->rows());
      stats_.vec_rows += left.batch->rows() + right.batch->rows();
      out.batch = vec::hash_join_tables(
          *left.batch, *right.batch, left_col, right_col,
          residual_program.has_value() ? &*residual_program : nullptr,
          context_.vec.batch_rows);
      stats_.vec_batches += out.batch->batches.size();
      return out;
    }
    ++stats_.vec_fallbacks;
  }
  ensure_rows(&left);
  ensure_rows(&right);

  auto residual_ok = [&](const Value& env) {
    if (node.predicate == nullptr) return true;
    oql::Env scope;
    for (const auto& [var, row] : env.fields()) scope.bind(var, row);
    return evaluator_.eval(node.predicate, scope).as_bool();
  };

  if (node.op == POp::MergeJoin) {
    auto [left_var, left_attr] = key_parts(node.left_key);
    auto [right_var, right_attr] = key_parts(node.right_key);
    auto key_of = [](const Value& env, const std::string& var,
                     const std::string& attr) -> const Value& {
      return env.field(var).field(attr);
    };
    std::sort(left.data.begin(), left.data.end(),
              [&](const Value& a, const Value& b) {
                return Value::compare(key_of(a, left_var, left_attr),
                                      key_of(b, left_var, left_attr)) < 0;
              });
    std::sort(right.data.begin(), right.data.end(),
              [&](const Value& a, const Value& b) {
                return Value::compare(key_of(a, right_var, right_attr),
                                      key_of(b, right_var, right_attr)) < 0;
              });
    size_t i = 0;
    size_t j = 0;
    while (i < left.data.size() && j < right.data.size()) {
      // The run keys are hoisted once per run: recomputing the struct
      // field lookups inside the run-detection conditions costs O(run²).
      const Value& lkey = key_of(left.data[i], left_var, left_attr);
      const Value& rkey = key_of(right.data[j], right_var, right_attr);
      int c = Value::compare(lkey, rkey);
      if (c < 0) {
        ++i;
      } else if (c > 0) {
        ++j;
      } else {
        // Cross product of the equal-key runs.
        size_t i_end = i + 1;
        while (i_end < left.data.size() &&
               Value::compare(key_of(left.data[i_end], left_var, left_attr),
                              lkey) == 0) {
          ++i_end;
        }
        size_t j_end = j + 1;
        while (j_end < right.data.size() &&
               Value::compare(key_of(right.data[j_end], right_var, right_attr),
                              rkey) == 0) {
          ++j_end;
        }
        for (size_t a = i; a < i_end; ++a) {
          for (size_t b = j; b < j_end; ++b) {
            Value merged = merge_envs(left.data[a], right.data[b]);
            if (residual_ok(merged)) out.data.push_back(std::move(merged));
          }
        }
        i = i_end;
        j = j_end;
      }
    }
    return out;
  }

  if (node.op == POp::HashJoin) {
    auto [right_var, right_attr] = key_parts(node.right_key);
    auto [left_var, left_attr] = key_parts(node.left_key);
    std::unordered_map<uint64_t, std::vector<const Value*>> buckets;
    for (const Value& env : right.data) {
      const Value& key = env.field(right_var).field(right_attr);
      buckets[key.hash()].push_back(&env);
    }
    for (const Value& lenv : left.data) {
      const Value& key = lenv.field(left_var).field(left_attr);
      auto it = buckets.find(key.hash());
      if (it == buckets.end()) continue;
      for (const Value* renv : it->second) {
        if (renv->field(right_var).field(right_attr) != key) continue;
        Value merged = merge_envs(lenv, *renv);
        if (residual_ok(merged)) out.data.push_back(std::move(merged));
      }
    }
    return out;
  }

  for (const Value& lenv : left.data) {
    for (const Value& renv : right.data) {
      Value merged = merge_envs(lenv, renv);
      if (residual_ok(merged)) out.data.push_back(std::move(merged));
    }
  }
  return out;
}

Runtime::Outcome Runtime::eval_bind_join(const Physical& node) {
  Outcome left = eval(node.left);
  Outcome out;
  if (!left.residuals.empty()) {
    out.residuals.push_back(node.logical);
    return out;
  }
  // The bind join extracts build-side keys and probes row-wise; its
  // probe-side fetch is the dominant cost, so it stays on the row path.
  ensure_rows(&left);
  if (left.data.empty()) {
    return out;  // join over an empty build side is empty
  }

  auto [left_var, left_attr] = key_parts(node.left_key);
  auto [right_var, right_attr] = key_parts(node.right_key);

  // Distinct build-side keys, in deterministic (first-seen) order. Hash
  // buckets with an equality check replace Value::set's full sort — the
  // build side was just materialized, an O(n log n) ordering of deep
  // values buys nothing here.
  std::vector<Value> keys;
  keys.reserve(left.data.size());
  std::unordered_map<uint64_t, std::vector<size_t>> seen;
  for (const Value& env : left.data) {
    const Value& key = env.field(left_var).field(left_attr);
    std::vector<size_t>& bucket = seen[key.hash()];
    bool duplicate = false;
    for (size_t idx : bucket) {
      if (keys[idx] == key) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    bucket.push_back(keys.size());
    keys.push_back(key);
  }
  // Ship the keys in key order: a sorted disjunction gives the source's
  // ordered index a monotone probe sequence (and makes the shipped SQL
  // canonical for identical key sets regardless of build-side order).
  std::stable_sort(keys.begin(), keys.end(),
                   [](const Value& a, const Value& b) {
                     return Value::compare(a, b) < 0;
                   });

  // Probe expression: base remote plus the key disjunction — unless the
  // key set is too large to be worth shipping.
  algebra::LogicalPtr remote = node.remote;
  if (keys.size() <= node.max_bind_keys) {
    std::vector<oql::ExprPtr> terms;
    terms.reserve(keys.size());
    for (const Value& key : keys) {
      terms.push_back(oql::binary(
          oql::BinaryOp::Eq,
          oql::path(oql::ident(right_var), right_attr), oql::literal(key)));
    }
    oql::ExprPtr bind_pred = std::move(terms.front());
    for (size_t k = 1; k < terms.size(); ++k) {
      bind_pred = oql::binary(oql::BinaryOp::Or, std::move(bind_pred),
                              std::move(terms[k]));
    }
    if (remote->op == algebra::LOp::Filter) {
      remote = algebra::filter(
          remote->child,
          oql::binary(oql::BinaryOp::And, remote->predicate, bind_pred));
    } else {
      remote = algebra::filter(remote, bind_pred);
    }
  }

  // The probe is recorded in the cost history under the plan's canonical
  // probe_shape (one placeholder key), not under the literal-laden
  // disjunction — so future optimizations can ask "what does a bound
  // probe cost here" and observe indexed probes coming back fast.
  Outcome right =
      call_source(/*origin=*/nullptr, node.repository, node.wrapper, remote,
                  node.logical, node.probe_shape);
  if (!right.residuals.empty()) {
    out.residuals.push_back(node.logical);
    return out;
  }
  ensure_rows(&right);

  // Hash join exactly as POp::HashJoin (the bind filter narrowed the
  // probe side but per-tuple matching still applies).
  auto residual_ok = [&](const Value& env) {
    if (node.predicate == nullptr) return true;
    oql::Env scope;
    for (const auto& [var, row] : env.fields()) scope.bind(var, row);
    return evaluator_.eval(node.predicate, scope).as_bool();
  };
  std::unordered_map<uint64_t, std::vector<const Value*>> buckets;
  for (const Value& env : right.data) {
    buckets[env.field(right_var).field(right_attr).hash()].push_back(&env);
  }
  for (const Value& lenv : left.data) {
    const Value& key = lenv.field(left_var).field(left_attr);
    auto it = buckets.find(key.hash());
    if (it == buckets.end()) continue;
    for (const Value* renv : it->second) {
      if (renv->field(right_var).field(right_attr) != key) continue;
      Value merged = merge_envs(lenv, *renv);
      if (residual_ok(merged)) out.data.push_back(std::move(merged));
    }
  }
  return out;
}

}  // namespace disco::physical
