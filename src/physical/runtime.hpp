// The mediator run-time system (§3.3, §4 of the paper).
//
// Executes a physical plan against the wrappers through the simulated
// network, under a query deadline:
//
//   "Query processing proceeds normally until a designed time has
//    elapsed. At this point, data sources are classified as unavailable
//    ... The query is rewritten into two parts, one which contains a
//    query to the unavailable data, and the other ... data." (§4)
//
// All exec calls of a plan are issued logically in parallel at the same
// virtual instant (§4: "These calls proceed in parallel. Calls to
// available data sources succeed. Calls to unavailable data sources
// block."). A call whose simulated latency exceeds the deadline is
// classified unavailable. The query's elapsed virtual time is the max
// completed-call latency, or the full deadline when anything blocked.
//
// Results propagate as (data, residuals):
//   * exec: data when the source answered, otherwise its logical form
//     becomes a residual;
//   * filter/project distribute over residuals (filter(union(d, r)) =
//     union(filter(d), filter(r)));
//   * a join with any residual input turns entirely residual — its
//     logical form references only extents, so resubmission refetches
//     both sides (the submit operator cannot ship data between sources,
//     §3.2, so this is also what the paper's algebra can express);
//   * union concatenates.
// The final answer is union(residuals..., data) — a query again.
//
// Two execution modes share the operator code (DESIGN.md §2, "Execution
// concurrency"):
//   * virtual-time (ExecContext::dispatcher == nullptr): the seed's
//     deterministic simulation — calls run sequentially, parallelism is
//     accounted as max over latencies, the VirtualClock advances;
//   * wall-clock (dispatcher set): exec leaves are prefetched onto the
//     dispatcher's thread pool, simulated latency is actually waited
//     out, blips are retried with backoff, and elapsed time is measured.
#pragma once

#include <cmath>
#include <functional>
#include <future>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algebra/logical.hpp"
#include "cache/result_cache.hpp"
#include "catalog/catalog.hpp"
#include "exec/dispatcher.hpp"
#include "net/network.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "oql/eval.hpp"
#include "physical/plan.hpp"
#include "sched/scheduler.hpp"
#include "vec/batch.hpp"
#include "vec/ops.hpp"
#include "wrapper/wrapper.hpp"

namespace disco::physical {

/// Everything the runtime needs from the mediator.
struct ExecContext {
  const catalog::Catalog* catalog = nullptr;
  net::Network* network = nullptr;
  net::VirtualClock* clock = nullptr;
  /// Resolves a wrapper object name to the wrapper. Never returns null.
  std::function<wrapper::Wrapper*(const std::string&)> wrapper_by_name;
  /// Extra collections visible to predicate/projection evaluation
  /// (materialized auxiliary extents for nested subqueries); may be null.
  const oql::CollectionResolver* resolver = nullptr;
  /// Wall-clock executor; null selects the sequential virtual-time path.
  exec::ParallelDispatcher* dispatcher = nullptr;
  /// Per-source admission control (src/sched/); null (the default) means
  /// every call goes straight to the dispatcher. Only consulted in
  /// wall-clock mode, and only for direct fetches — a cache hit or a
  /// coalesced waiter never holds a token.
  sched::QueryScheduler* scheduler = nullptr;
  /// Identity of the submitting query for the scheduler's fair queue
  /// (round-robin across query ids); assigned by the mediator.
  uint64_t query_id = 0;
  /// Submit-result cache + single-flight coalescer (src/cache/); null
  /// (the default) preserves the fetch-every-time §4 semantics. Only
  /// successful replies are cached — residual outcomes never are.
  cache::ResultCache* cache = nullptr;
  /// Query deadline in seconds of virtual time (§4's "designated time").
  double deadline_s = std::numeric_limits<double>::infinity();
  /// §2.1: "At run-time, the wrapper checks that these types are indeed
  /// the same." When set, every env-shaped row a wrapper returns is
  /// validated against its extent's interface (TypeError on mismatch).
  bool validate_rows = false;
  /// Cost-history recording hook (§3.3: "When the exec call finishes, the
  /// arguments of the call, the time taken and the amount of data
  /// generated is recorded"); may be empty.
  std::function<void(const std::string& repository,
                     const algebra::LogicalPtr& remote, double time_s,
                     size_t rows)>
      record_exec;
  /// Circuit-breaker admission (src/session/): when set and returning
  /// false for a repository, the exec leaf short-circuits — its residual
  /// is emitted immediately, with no network call and no deadline wait.
  /// Consulted exactly once per source call; may be empty.
  std::function<bool(const std::string& repository)> admit_source;
  /// Health outcome feed: every finished source call (success or final
  /// failure) reports (repository, available, latency_s). The mediator
  /// wires this to the SourceHealthTracker in virtual-time mode; in
  /// wall-clock mode the dispatcher's outcome listener reports instead.
  /// May be empty.
  std::function<void(const std::string& repository, bool available,
                     double latency_s)>
      report_health;
  /// Tracing context (src/obs/): when set, every source call records an
  /// "exec" span (repository, remote expression, attempts, latency,
  /// rows, outcome) and circuit refusals record "short_circuit" instants
  /// under it. Default-off: one pointer check per site.
  obs::ObsContext obs;
  /// Columnar batch execution (src/vec/). Off by default: operators stay
  /// row-at-a-time. When enabled, exec/const leaves convert flat answer
  /// bags to column batches and filter/project/hash-join/union run
  /// batch-wise, falling back per operator whenever the data or the
  /// expression is outside the vectorizable subset. Purely an execution-
  /// strategy switch — answers are bag-equal either way (enforced by
  /// tests/test_vec_differential.cpp), and virtual-time accounting is
  /// untouched.
  vec::VecOptions vec;
  /// Per-operator rows/sec counters ("vec.filter.rows", "vec.filter.ns",
  /// ...); null disables recording.
  obs::Registry* metrics = nullptr;
};

struct RunStats {
  size_t exec_calls = 0;
  size_t unavailable_calls = 0;  ///< down, past-deadline, or open-circuit
  size_t short_circuit_calls = 0;  ///< subset: refused by an open circuit
  size_t rows_fetched = 0;
  size_t retry_attempts = 0;  ///< wall-clock mode: attempts beyond the first
  size_t cache_hits = 0;       ///< source calls served from a stored entry
  size_t cache_coalesced = 0;  ///< source calls that joined an in-flight
                               ///< identical fetch (single-flight)
  size_t shed_calls = 0;  ///< subset of unavailable: shed by the scheduler
                          ///< (queue full / queue deadline / drain) and
                          ///< converted to §4 residuals
  size_t vec_batches = 0;    ///< column batches produced by vec operators
  size_t vec_rows = 0;       ///< rows that flowed through vec operators
  size_t vec_fallbacks = 0;  ///< vec-eligible sites that fell back to rows
  double elapsed_s = 0;  ///< virtual (or wall, in wall-clock mode) time

  /// Accumulation across runs (aux materialization, resubmissions).
  RunStats& operator+=(const RunStats& other) {
    exec_calls += other.exec_calls;
    unavailable_calls += other.unavailable_calls;
    short_circuit_calls += other.short_circuit_calls;
    rows_fetched += other.rows_fetched;
    retry_attempts += other.retry_attempts;
    cache_hits += other.cache_hits;
    cache_coalesced += other.cache_coalesced;
    shed_calls += other.shed_calls;
    vec_batches += other.vec_batches;
    vec_rows += other.vec_rows;
    vec_fallbacks += other.vec_fallbacks;
    elapsed_s += other.elapsed_s;
    return *this;
  }
};

struct RunResult {
  /// Data part of the answer (a bag).
  Value data;
  /// Residual logical branches; empty means the answer is complete.
  std::vector<algebra::LogicalPtr> residuals;
  RunStats stats;

  bool complete() const { return residuals.empty(); }
};

class Runtime {
 public:
  explicit Runtime(ExecContext context);

  /// Executes the plan; advances the virtual clock by the elapsed time.
  RunResult run(const PhysicalPtr& plan);

 private:
  struct Outcome {
    std::vector<Value> data;  ///< env structs or projected values
    /// Columnar form of the data (vec mode). When set, `data` is empty
    /// and the rows live here; ensure_rows() converts back on demand
    /// (operator fallback, final answer).
    std::optional<vec::Table> batch;
    std::vector<algebra::LogicalPtr> residuals;
  };
  /// One source call: the wrapper's reply plus the (possibly retried)
  /// network outcome. Produced on a pool thread in wall-clock mode.
  struct Fetch {
    wrapper::SubmitResult submit;
    exec::DispatchOutcome net;
    /// How the reply was obtained; cache-served fetches skip the health
    /// report, cost-history record and row validation (no new source
    /// observation was made).
    enum class Served { Source, CacheHit, Coalesced };
    Served served = Served::Source;
    /// Shed by the scheduler before any network attempt: the call turns
    /// into a §4 residual (counted separately from plain unavailability).
    bool shed = false;
  };

  Outcome eval(const PhysicalPtr& node);
  Outcome eval_exec(const Physical& node);
  Outcome eval_join(const Physical& node);
  Outcome eval_bind_join(const Physical& node);
  /// Collapses an Outcome's columnar form back to rows (no-op without
  /// one). Called on operator fallback and before the final answer.
  void ensure_rows(Outcome* out);
  /// Leaf conversion: rows -> batches when vec is on and the bag is flat;
  /// otherwise keeps the rows (counting the fallback when vec is on).
  Outcome make_leaf_outcome(const std::vector<Value>& rows);
  /// Shared exec machinery: runs `remote` at `repository` through
  /// `wrapper_name`; on unavailability the residual is
  /// `logical_for_residual`. `origin` identifies the plan node for
  /// prefetch lookup (null for bind-join probes, whose remote expression
  /// is built at eval time). `record_shape` overrides the expression the
  /// cost history records the call under (bind-join probes record under
  /// the plan's canonical one-key probe_shape, not the literal-laden
  /// expression actually shipped); null records under `remote`.
  Outcome call_source(const Physical* origin, const std::string& repository,
                      const std::string& wrapper_name,
                      const algebra::LogicalPtr& remote,
                      const algebra::LogicalPtr& logical_for_residual,
                      const algebra::LogicalPtr& record_shape = nullptr);
  /// Wrapper submit + simulated network call, in either mode. Touches
  /// only thread-safe components, so it can run on a pool thread. Checks
  /// the result cache first (hit / join an identical in-flight fetch /
  /// lead and publish); fetch_direct is the uncached machinery.
  Fetch fetch_from_source(const std::string& repository,
                          const std::string& wrapper_name,
                          const algebra::LogicalPtr& remote);
  Fetch fetch_direct(const std::string& repository,
                     const std::string& wrapper_name,
                     const algebra::LogicalPtr& remote);
  bool wall_clock_mode() const { return context_.dispatcher != nullptr; }
  /// Wall-clock mode: launch every exec leaf of `plan` onto the pool.
  void prefetch_execs(const PhysicalPtr& plan);
  /// Blocks until every still-pending prefetched call finished, so pool
  /// tasks never outlive this Runtime (exception path, DAG-shaped plans).
  void drain_prefetched() noexcept;

  ExecContext context_;
  oql::Evaluator evaluator_;
  double issue_time_ = 0;      ///< virtual instant the execs are issued
  double max_latency_ = 0;     ///< slowest completed call
  bool any_blocked_ = false;   ///< at least one call missed the deadline
  RunStats stats_;
  std::unordered_map<const Physical*, std::future<Fetch>> prefetched_;
  /// Exec leaves refused by admit_source at prefetch time (wall-clock
  /// mode) — call_source short-circuits them without consulting the
  /// admission hook a second time (admit has trial-admission side
  /// effects in the circuit breaker).
  std::unordered_set<const Physical*> denied_;
};

}  // namespace disco::physical
