// Batch-at-a-time operator kernels over `vec::Table` (src/vec/).
//
// Predicates and projections are compiled once per operator against the
// input schema into small programs; compilation declines (nullopt) on
// anything outside the vectorizable subset, and the runtime then keeps
// the row path for that operator — per-operator graceful fallback, never
// a behavior change. Every kernel reproduces the row path's observable
// semantics exactly (the differential harness in
// tests/test_vec_differential.cpp is the proof obligation):
//
//   * comparisons follow oql::Evaluator's compare_result — Eq/Ne are
//     total under Value::compare's kind ranks, ordering a nil or
//     mixed-kind pair throws the same ExecutionError;
//   * and/or/not mirror the evaluator's short-circuit by evaluating each
//     subterm only on the rows the row path would reach (masked
//     evaluation), so data-dependent errors fire for the same rows;
//   * hash join equals POp::HashJoin output as a bag (build right,
//     probe left in order, equality recheck after the hash);
//   * aggregation mirrors eval_call: sum is Int iff every item is Int,
//     avg is always real, empty sum/avg are Int 0 / real 0, empty
//     min/max decline so the evaluator can throw its own error.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "algebra/logical.hpp"
#include "catalog/catalog.hpp"
#include "oql/ast.hpp"
#include "vec/batch.hpp"

namespace disco::vec {

/// One compiled predicate node. Comparisons reference input columns by
/// index and hold literals by value; And/Or/Not combine masks.
struct PredNode {
  enum class Kind { Const, Cmp, And, Or, Not };

  Kind kind = Kind::Const;
  bool const_value = false;  // Const

  // Cmp: left/right operand is a column (index >= 0) or `*_lit`.
  oql::BinaryOp op = oql::BinaryOp::Eq;
  int left_col = -1;
  int right_col = -1;
  Value left_lit;
  Value right_lit;

  std::unique_ptr<PredNode> a, b;  // And/Or operands, Not operand in `a`
};

struct PredicateProgram {
  std::unique_ptr<PredNode> root;
};

/// Compiles a predicate against `schema` (Env shape: operands are
/// var.attr paths and scalar literals, combined with =/!=/</<=/>/>=,
/// and/or/not). nullopt for anything else.
std::optional<PredicateProgram> compile_predicate(const oql::ExprPtr& expr,
                                                  const Schema& schema);

/// Evaluates the program over `batch`, restricted to rows whose bit is
/// set in `candidates` (the short-circuit mask); returns the pass mask.
/// Throws ExecutionError exactly where the row path would.
std::vector<uint8_t> eval_predicate(const PredicateProgram& program,
                                    const ColumnBatch& batch,
                                    const std::vector<uint8_t>& candidates);

/// A compiled projection: each output column is one input column; the
/// whole program is column-pointer shuffling (zero copies per batch).
struct ProjectionProgram {
  Schema out_schema;
  std::vector<int> cols;  ///< input column index per output column
};

/// Compiles `select <expr>` shapes against an Env schema: `x` (the whole
/// var as a Flat struct), `x.attr` (Scalar), `struct(n1: x.a, ...)`
/// (Flat). nullopt otherwise.
std::optional<ProjectionProgram> compile_projection(const oql::ExprPtr& expr,
                                                    const Schema& schema);

// -- kernels ---------------------------------------------------------------

/// Gathers the rows passing `program`. Batches whose every row passes are
/// shared, not copied.
Table filter_table(const Table& in, const PredicateProgram& program);

/// Applies a projection batch-wise (shares column vectors).
Table project_table(const Table& in, const ProjectionProgram& program);

/// First-occurrence deduplication by whole-row equality; equality and
/// the resulting multiset match Value::set over the rebuilt rows (order
/// differs — set sorts — which bag semantics cannot observe).
Table distinct_table(const Table& in, size_t batch_rows);

/// Equi hash join: builds on `right`, probes `left` in row order, then
/// applies the optional residual program (compiled against the merged
/// schema). The merged schema is left's columns followed by right's
/// (exactly merge_envs). Both inputs must share the Env shape.
Table hash_join_tables(const Table& left, const Table& right, int left_col,
                       int right_col, const PredicateProgram* residual,
                       size_t batch_rows);

/// Batch-wise union merge: splices `part`'s batches onto `into` when the
/// layouts agree (an empty part always merges). False means the caller
/// must fall back to row concatenation.
bool concat_tables(Table* into, Table&& part);

/// Aggregates a Scalar-shaped table, mirroring oql::Evaluator::eval_call
/// ("sum", "count", "min", "max", "avg"). nullopt when this kernel
/// cannot reproduce the evaluator exactly (non-scalar shape, nulls or
/// non-numerics under sum/avg, empty min/max — the caller re-evaluates
/// on the row path, which also reproduces the evaluator's errors).
std::optional<Value> aggregate_table(const Table& table,
                                     const std::string& fn);

// -- static eligibility (optimizer / explain) ------------------------------

/// Static shape test: does this logical subtree produce env rows the
/// converters accept (get/filter/join/union/submit shapes)? Projections
/// compute values and constants are data-dependent — both false. Used by
/// the optimizer's vec-aware join choice; actual rows can still fall
/// back (a source may return non-flat values), which is always safe.
bool vec_batchable(const algebra::LogicalPtr& node);

/// The Env schema an exec leaf's reply will have, derived from the
/// remote expression's get nodes and the catalog's interfaces — the
/// static mirror of what from_rows infers from actual rows. nullopt for
/// replies that are not env-shaped (project-topped remotes).
std::optional<Schema> static_schema(const algebra::LogicalPtr& remote,
                                    const catalog::Catalog& catalog);

}  // namespace disco::vec
