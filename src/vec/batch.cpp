#include "vec/batch.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"

namespace disco::vec {

const char* to_string(ColType type) {
  switch (type) {
    case ColType::Untyped:
      return "untyped";
    case ColType::Bool:
      return "bool";
    case ColType::Int:
      return "int";
    case ColType::Double:
      return "double";
    case ColType::String:
      return "string";
  }
  return "?";
}

const char* to_string(RowShape shape) {
  switch (shape) {
    case RowShape::Scalar:
      return "scalar";
    case RowShape::Flat:
      return "flat";
    case RowShape::Env:
      return "env";
  }
  return "?";
}

void Column::push_null_bit(bool null) {
  const size_t word = size_ >> 6;
  if (word >= nulls_.size()) nulls_.push_back(0);
  if (null) {
    nulls_[word] |= uint64_t{1} << (size_ & 63);
    ++null_count_;
  }
  ++size_;
}

bool Column::settle(ColType type) {
  if (type_ == type) return true;
  if (type_ != ColType::Untyped) return false;
  type_ = type;
  // Leading nulls were recorded in the bitmap only; backfill their
  // storage slots so cell index == vector index.
  switch (type_) {
    case ColType::Bool:
      bools_.resize(size_, 0);
      break;
    case ColType::Int:
      ints_.resize(size_, 0);
      break;
    case ColType::Double:
      doubles_.resize(size_, 0);
      break;
    case ColType::String:
      strings_.resize(size_);
      break;
    case ColType::Untyped:
      break;
  }
  return true;
}

void Column::append_null() {
  switch (type_) {
    case ColType::Untyped:
      break;
    case ColType::Bool:
      bools_.push_back(0);
      break;
    case ColType::Int:
      ints_.push_back(0);
      break;
    case ColType::Double:
      doubles_.push_back(0);
      break;
    case ColType::String:
      strings_.emplace_back();
      break;
  }
  push_null_bit(true);
}

bool Column::append(const Value& value) {
  switch (value.kind()) {
    case ValueKind::Null:
      append_null();
      return true;
    case ValueKind::Bool:
      if (!settle(ColType::Bool)) return false;
      bools_.push_back(value.as_bool() ? 1 : 0);
      break;
    case ValueKind::Int:
      if (!settle(ColType::Int)) return false;
      ints_.push_back(value.as_int());
      break;
    case ValueKind::Double:
      if (!settle(ColType::Double)) return false;
      doubles_.push_back(value.as_double());
      break;
    case ValueKind::String:
      if (!settle(ColType::String)) return false;
      strings_.push_back(value.as_string());
      break;
    default:
      return false;  // collections and structs never fit a column
  }
  push_null_bit(false);
  return true;
}

void Column::append_cell(const Column& from, size_t row) {
  if (from.is_null(row)) {
    append_null();
    return;
  }
  internal_check(settle(from.type_), "gather across differently-typed columns");
  switch (from.type_) {
    case ColType::Bool:
      bools_.push_back(from.bools_[row]);
      break;
    case ColType::Int:
      ints_.push_back(from.ints_[row]);
      break;
    case ColType::Double:
      doubles_.push_back(from.doubles_[row]);
      break;
    case ColType::String:
      strings_.push_back(from.strings_[row]);
      break;
    case ColType::Untyped:
      break;
  }
  push_null_bit(false);
}

Value Column::value_at(size_t row) const {
  if (is_null(row)) return Value::null();
  switch (type_) {
    case ColType::Bool:
      return Value::boolean(bools_[row] != 0);
    case ColType::Int:
      return Value::integer(ints_[row]);
    case ColType::Double:
      return Value::real(doubles_[row]);
    case ColType::String:
      return Value::string(strings_[row]);
    case ColType::Untyped:
      break;
  }
  throw InternalError("non-null cell in an untyped column");
}

void Column::reserve(size_t rows) {
  nulls_.reserve((rows + 63) / 64);
  switch (type_) {
    case ColType::Bool:
      bools_.reserve(rows);
      break;
    case ColType::Int:
      ints_.reserve(rows);
      break;
    case ColType::Double:
      doubles_.reserve(rows);
      break;
    case ColType::String:
      strings_.reserve(rows);
      break;
    case ColType::Untyped:
      break;
  }
}

namespace {

/// Value::compare's kind-major rank restricted to scalars.
int cell_rank(ColType type) {
  switch (type) {
    case ColType::Untyped:
      return 0;  // only nulls live here
    case ColType::Bool:
      return 1;
    case ColType::Int:
    case ColType::Double:
      return 2;
    case ColType::String:
      return 3;
  }
  return 4;
}

/// Mirror of value.cpp's compare_doubles, NaN rule included: NaN == NaN
/// and NaN sorts after every other number (+inf included), so batch
/// kernels and the row path agree on the total order.
int compare_doubles(double a, double b) {
  const bool a_nan = std::isnan(a);
  const bool b_nan = std::isnan(b);
  if (a_nan || b_nan) {
    if (a_nan && b_nan) return 0;
    return a_nan ? 1 : -1;
  }
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

uint64_t fnv1a(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

int Column::compare_cells(size_t row, const Column& other,
                          size_t other_row) const {
  const bool a_null = is_null(row);
  const bool b_null = other.is_null(other_row);
  if (a_null || b_null) {
    if (a_null && b_null) return 0;
    return a_null ? -1 : 1;  // nil ranks below every scalar
  }
  const int ra = cell_rank(type_);
  const int rb = cell_rank(other.type_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type_) {
    case ColType::Bool:
      return static_cast<int>(bools_[row]) -
             static_cast<int>(other.bools_[other_row]);
    case ColType::Int:
    case ColType::Double: {
      const double a = type_ == ColType::Int
                           ? static_cast<double>(ints_[row])
                           : doubles_[row];
      const double b = other.type_ == ColType::Int
                           ? static_cast<double>(other.ints_[other_row])
                           : other.doubles_[other_row];
      return compare_doubles(a, b);
    }
    case ColType::String:
      return strings_[row].compare(other.strings_[other_row]);
    case ColType::Untyped:
      break;
  }
  throw InternalError("non-null cell in an untyped column");
}

int Column::compare_cell_value(size_t row, const Value& value) const {
  const bool a_null = is_null(row);
  const bool b_null = value.kind() == ValueKind::Null;
  if (a_null || b_null) {
    if (a_null && b_null) return 0;
    return a_null ? -1 : 1;
  }
  int rb;
  switch (value.kind()) {
    case ValueKind::Bool:
      rb = 1;
      break;
    case ValueKind::Int:
    case ValueKind::Double:
      rb = 2;
      break;
    case ValueKind::String:
      rb = 3;
      break;
    default:
      rb = 4;  // collections and structs rank above every scalar
      break;
  }
  const int ra = cell_rank(type_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type_) {
    case ColType::Bool:
      return static_cast<int>(bools_[row]) -
             static_cast<int>(value.as_bool() ? 1 : 0);
    case ColType::Int:
      return compare_doubles(static_cast<double>(ints_[row]),
                             value.as_double());
    case ColType::Double:
      return compare_doubles(doubles_[row], value.as_double());
    case ColType::String:
      return strings_[row].compare(value.as_string());
    case ColType::Untyped:
      break;
  }
  throw InternalError("non-null cell in an untyped column");
}

uint64_t Column::hash_cell(size_t row) const {
  if (is_null(row)) return 0x2545f4914f6cdd1dULL;
  switch (type_) {
    case ColType::Bool:
      return bools_[row] ? 0x9e3779b97f4a7c15ULL : 0xc2b2ae3d27d4eb4fULL;
    case ColType::Int:
    case ColType::Double: {
      // Int 1 and Double 1.0 are equal cells, so they must collide:
      // hash the double image's bits (normalizing -0.0), like
      // Value::hash.
      double d = type_ == ColType::Int ? static_cast<double>(ints_[row])
                                       : doubles_[row];
      if (d == 0.0) d = 0.0;
      if (std::isnan(d)) d = std::numeric_limits<double>::quiet_NaN();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      bits *= 0xff51afd7ed558ccdULL;
      bits ^= bits >> 33;
      return bits;
    }
    case ColType::String:
      return fnv1a(strings_[row].data(), strings_[row].size());
    case ColType::Untyped:
      break;
  }
  throw InternalError("non-null cell in an untyped column");
}

bool Schema::same_layout(const Schema& other) const {
  if (shape != other.shape || columns.size() != other.columns.size()) {
    return false;
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].var != other.columns[i].var ||
        columns[i].name != other.columns[i].name) {
      return false;
    }
  }
  return true;
}

int Schema::index_of(std::string_view var, std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].var == var && columns[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t Table::rows() const {
  size_t n = 0;
  for (const ColumnBatch& batch : batches) n += batch.rows;
  return n;
}

namespace {

bool is_scalar_kind(ValueKind kind) {
  switch (kind) {
    case ValueKind::Null:
    case ValueKind::Bool:
    case ValueKind::Int:
    case ValueKind::Double:
    case ValueKind::String:
      return true;
    default:
      return false;
  }
}

/// Derives the common layout from the first row. nullopt when the row
/// is not flat (nested collections, mixed struct/scalar fields, an env
/// var with zero attributes).
std::optional<Schema> schema_of(const Value& row) {
  Schema schema;
  if (is_scalar_kind(row.kind())) {
    schema.shape = RowShape::Scalar;
    schema.columns.push_back({"", ""});
    return schema;
  }
  if (row.kind() != ValueKind::Struct) return std::nullopt;
  const auto& fields = row.fields();
  const bool env = !fields.empty() &&
                   fields.front().second.kind() == ValueKind::Struct;
  if (env) {
    schema.shape = RowShape::Env;
    for (const auto& [var, inner] : fields) {
      if (inner.kind() != ValueKind::Struct) return std::nullopt;
      if (inner.fields().empty()) {
        // A var with zero attributes has no column to live in; rebuilding
        // would drop the var entirely. Decline.
        return std::nullopt;
      }
      for (const auto& [attr, cell] : inner.fields()) {
        if (!is_scalar_kind(cell.kind())) return std::nullopt;
        schema.columns.push_back({var, attr});
      }
    }
    return schema;
  }
  schema.shape = RowShape::Flat;
  for (const auto& [name, cell] : fields) {
    if (!is_scalar_kind(cell.kind())) return std::nullopt;
    schema.columns.push_back({"", name});
  }
  return schema;
}

/// Appends one row's cells; false when the row does not match `schema`'s
/// layout or a cell fights its column's settled type.
bool append_row(const Schema& schema, const Value& row, ColumnBatch* batch) {
  switch (schema.shape) {
    case RowShape::Scalar:
      if (!is_scalar_kind(row.kind())) return false;
      if (!batch->columns[0]->append(row)) return false;
      break;
    case RowShape::Flat: {
      if (row.kind() != ValueKind::Struct) return false;
      const auto& fields = row.fields();
      if (fields.size() != schema.columns.size()) return false;
      for (size_t i = 0; i < fields.size(); ++i) {
        if (fields[i].first != schema.columns[i].name) return false;
        if (!batch->columns[i]->append(fields[i].second)) return false;
      }
      break;
    }
    case RowShape::Env: {
      if (row.kind() != ValueKind::Struct) return false;
      size_t col = 0;
      for (const auto& [var, inner] : row.fields()) {
        if (inner.kind() != ValueKind::Struct) return false;
        for (const auto& [attr, cell] : inner.fields()) {
          if (col >= schema.columns.size() ||
              schema.columns[col].var != var ||
              schema.columns[col].name != attr) {
            return false;
          }
          if (!batch->columns[col]->append(cell)) return false;
          ++col;
        }
      }
      if (col != schema.columns.size()) return false;
      break;
    }
  }
  ++batch->rows;
  return true;
}

ColumnBatch make_batch(const Schema& schema, size_t reserve_rows) {
  ColumnBatch batch;
  batch.columns.reserve(schema.columns.size());
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    auto column = std::make_shared<Column>();
    column->reserve(reserve_rows);
    batch.columns.push_back(std::move(column));
  }
  return batch;
}

}  // namespace

std::optional<Table> from_rows(const std::vector<Value>& rows,
                               size_t batch_rows) {
  internal_check(batch_rows > 0, "batch_rows must be positive");
  Table table;
  if (rows.empty()) return table;  // zero-column Flat layout, zero batches
  std::optional<Schema> schema = schema_of(rows.front());
  if (!schema) return std::nullopt;
  table.schema = std::move(*schema);
  for (size_t i = 0; i < rows.size(); i += batch_rows) {
    const size_t n = std::min(batch_rows, rows.size() - i);
    ColumnBatch batch = make_batch(table.schema, n);
    for (size_t j = 0; j < n; ++j) {
      if (!append_row(table.schema, rows[i + j], &batch)) return std::nullopt;
    }
    table.batches.push_back(std::move(batch));
  }
  return table;
}

Value row_at(const Schema& schema, const ColumnBatch& batch, size_t row) {
  switch (schema.shape) {
    case RowShape::Scalar:
      return batch.columns[0]->value_at(row);
    case RowShape::Flat: {
      std::vector<std::pair<std::string, Value>> fields;
      fields.reserve(schema.columns.size());
      for (size_t i = 0; i < schema.columns.size(); ++i) {
        fields.emplace_back(schema.columns[i].name,
                            batch.columns[i]->value_at(row));
      }
      return Value::strct(std::move(fields));
    }
    case RowShape::Env: {
      // Columns of one var are consecutive (the converter built them by
      // nested iteration); rebuild by var runs.
      std::vector<std::pair<std::string, Value>> vars;
      size_t i = 0;
      while (i < schema.columns.size()) {
        const std::string& var = schema.columns[i].var;
        std::vector<std::pair<std::string, Value>> attrs;
        while (i < schema.columns.size() && schema.columns[i].var == var) {
          attrs.emplace_back(schema.columns[i].name,
                             batch.columns[i]->value_at(row));
          ++i;
        }
        vars.emplace_back(var, Value::strct(std::move(attrs)));
      }
      return Value::strct(std::move(vars));
    }
  }
  throw InternalError("corrupt schema shape");
}

std::vector<Value> to_rows(const Table& table) {
  std::vector<Value> rows;
  rows.reserve(table.rows());
  for (const ColumnBatch& batch : table.batches) {
    for (size_t row = 0; row < batch.rows; ++row) {
      rows.push_back(row_at(table.schema, batch, row));
    }
  }
  return rows;
}

int compare_rows(const ColumnBatch& a, size_t row_a, const ColumnBatch& b,
                 size_t row_b) {
  for (size_t i = 0; i < a.columns.size(); ++i) {
    int c = a.columns[i]->compare_cells(row_a, *b.columns[i], row_b);
    if (c != 0) return c;
  }
  return 0;
}

uint64_t hash_row(const ColumnBatch& batch, size_t row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const std::shared_ptr<Column>& column : batch.columns) {
    const uint64_t cell = column->hash_cell(row);
    h ^= cell + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace disco::vec
