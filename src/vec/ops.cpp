#include "vec/ops.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "common/error.hpp"

namespace disco::vec {

namespace {

ValueKind kind_of(ColType type) {
  switch (type) {
    case ColType::Bool:
      return ValueKind::Bool;
    case ColType::Int:
      return ValueKind::Int;
    case ColType::Double:
      return ValueKind::Double;
    case ColType::String:
      return ValueKind::String;
    case ColType::Untyped:
      break;
  }
  return ValueKind::Null;
}

ValueKind cell_kind(const Column& column, size_t row) {
  return column.is_null(row) ? ValueKind::Null : kind_of(column.type());
}

bool is_numeric_kind(ValueKind kind) {
  return kind == ValueKind::Int || kind == ValueKind::Double;
}

/// compare_result's orderability rule: </<=/>/>= need mutually
/// comparable scalars; anything else (nil included) throws.
bool ordered_kinds(ValueKind a, ValueKind b) {
  return (is_numeric_kind(a) && is_numeric_kind(b)) ||
         (a == ValueKind::String && b == ValueKind::String) ||
         (a == ValueKind::Bool && b == ValueKind::Bool);
}

bool is_ordering_op(oql::BinaryOp op) {
  return op == oql::BinaryOp::Lt || op == oql::BinaryOp::Le ||
         op == oql::BinaryOp::Gt || op == oql::BinaryOp::Ge;
}

[[noreturn]] void throw_unordered(ValueKind a, ValueKind b) {
  // Byte-identical to oql::Evaluator's compare_result error.
  throw ExecutionError(std::string("cannot order ") + to_string(a) +
                       " against " + to_string(b));
}

bool apply_op(oql::BinaryOp op, int c) {
  switch (op) {
    case oql::BinaryOp::Eq:
      return c == 0;
    case oql::BinaryOp::Ne:
      return c != 0;
    case oql::BinaryOp::Lt:
      return c < 0;
    case oql::BinaryOp::Le:
      return c <= 0;
    case oql::BinaryOp::Gt:
      return c > 0;
    case oql::BinaryOp::Ge:
      return c >= 0;
    default:
      throw InternalError("non-comparison op in predicate program");
  }
}

ValueKind literal_kind(const Value& v) { return v.kind(); }

/// Tight loops for the dominant shapes: a null-free numeric or string
/// column against a literal of the same kind family. Returns false when
/// no specialization applies (the generic per-row path then runs).
bool eval_cmp_fast(const PredNode& node, const ColumnBatch& batch,
                   const std::vector<uint8_t>& candidates,
                   std::vector<uint8_t>* out) {
  if (node.left_col < 0 || node.right_col >= 0) return false;
  const Column& col = *batch.columns[node.left_col];
  if (col.has_nulls()) return false;
  const Value& lit = node.right_lit;
  const oql::BinaryOp op = node.op;
  const size_t n = batch.rows;
  if ((col.type() == ColType::Int || col.type() == ColType::Double) &&
      is_numeric_kind(lit.kind())) {
    const double rhs = lit.as_double();
    if (col.type() == ColType::Int) {
      const int64_t* cells = col.ints().data();
      for (size_t i = 0; i < n; ++i) {
        if (!candidates[i]) continue;
        const double lhs = static_cast<double>(cells[i]);
        (*out)[i] = apply_op(op, lhs < rhs ? -1 : (lhs > rhs ? 1 : 0));
      }
    } else {
      const double* cells = col.doubles().data();
      for (size_t i = 0; i < n; ++i) {
        if (!candidates[i]) continue;
        (*out)[i] =
            apply_op(op, cells[i] < rhs ? -1 : (cells[i] > rhs ? 1 : 0));
      }
    }
    return true;
  }
  if (col.type() == ColType::String && lit.kind() == ValueKind::String) {
    const std::string& rhs = lit.as_string();
    const std::vector<std::string>& cells = col.strings();
    for (size_t i = 0; i < n; ++i) {
      if (!candidates[i]) continue;
      (*out)[i] = apply_op(op, cells[i].compare(rhs));
    }
    return true;
  }
  return false;
}

void eval_cmp(const PredNode& node, const ColumnBatch& batch,
              const std::vector<uint8_t>& candidates,
              std::vector<uint8_t>* out) {
  if (eval_cmp_fast(node, batch, candidates, out)) return;
  const Column* lc =
      node.left_col >= 0 ? batch.columns[node.left_col].get() : nullptr;
  const Column* rc =
      node.right_col >= 0 ? batch.columns[node.right_col].get() : nullptr;
  const bool ordering = is_ordering_op(node.op);
  for (size_t i = 0; i < batch.rows; ++i) {
    if (!candidates[i]) continue;
    const ValueKind lk = lc != nullptr ? cell_kind(*lc, i)
                                       : literal_kind(node.left_lit);
    const ValueKind rk = rc != nullptr ? cell_kind(*rc, i)
                                       : literal_kind(node.right_lit);
    if (ordering && !ordered_kinds(lk, rk)) throw_unordered(lk, rk);
    int c;
    if (lc != nullptr && rc != nullptr) {
      c = lc->compare_cells(i, *rc, i);
    } else if (lc != nullptr) {
      c = lc->compare_cell_value(i, node.right_lit);
    } else {
      c = -rc->compare_cell_value(i, node.left_lit);
    }
    (*out)[i] = apply_op(node.op, c);
  }
}

/// Masked evaluation: each node sees only the rows the row-at-a-time
/// evaluator would reach given and/or short-circuiting, so data-dependent
/// errors fire on exactly the same rows.
std::vector<uint8_t> eval_node(const PredNode& node, const ColumnBatch& batch,
                               const std::vector<uint8_t>& candidates) {
  const size_t n = batch.rows;
  switch (node.kind) {
    case PredNode::Kind::Const: {
      if (!node.const_value) return std::vector<uint8_t>(n, 0);
      return candidates;
    }
    case PredNode::Kind::Cmp: {
      std::vector<uint8_t> out(n, 0);
      eval_cmp(node, batch, candidates, &out);
      return out;
    }
    case PredNode::Kind::And: {
      std::vector<uint8_t> a = eval_node(*node.a, batch, candidates);
      return eval_node(*node.b, batch, a);
    }
    case PredNode::Kind::Or: {
      std::vector<uint8_t> a = eval_node(*node.a, batch, candidates);
      std::vector<uint8_t> rest(n, 0);
      for (size_t i = 0; i < n; ++i) rest[i] = candidates[i] && !a[i];
      std::vector<uint8_t> b = eval_node(*node.b, batch, rest);
      for (size_t i = 0; i < n; ++i) a[i] = a[i] || b[i];
      return a;
    }
    case PredNode::Kind::Not: {
      std::vector<uint8_t> a = eval_node(*node.a, batch, candidates);
      std::vector<uint8_t> out(n, 0);
      for (size_t i = 0; i < n; ++i) out[i] = candidates[i] && !a[i];
      return out;
    }
  }
  throw InternalError("corrupt predicate program");
}

bool is_scalar_literal(const Value& v) {
  switch (v.kind()) {
    case ValueKind::Null:
    case ValueKind::Bool:
    case ValueKind::Int:
    case ValueKind::Double:
    case ValueKind::String:
      return true;
    default:
      return false;
  }
}

/// Resolves a comparison operand: a var.attr path into a column index,
/// or a scalar literal. False on anything else.
bool resolve_operand(const oql::ExprPtr& e, const Schema& schema, int* col,
                     Value* lit) {
  if (e->kind == oql::ExprKind::Literal) {
    if (!is_scalar_literal(e->literal)) return false;
    *lit = e->literal;
    return true;
  }
  if (e->kind == oql::ExprKind::Path &&
      e->child->kind == oql::ExprKind::Ident) {
    const int idx = schema.index_of(e->child->name, e->name);
    if (idx < 0) return false;
    *col = idx;
    return true;
  }
  return false;
}

std::unique_ptr<PredNode> compile_node(const oql::ExprPtr& e,
                                       const Schema& schema) {
  switch (e->kind) {
    case oql::ExprKind::Literal: {
      if (e->literal.kind() != ValueKind::Bool) return nullptr;
      auto node = std::make_unique<PredNode>();
      node->kind = PredNode::Kind::Const;
      node->const_value = e->literal.as_bool();
      return node;
    }
    case oql::ExprKind::Unary: {
      if (e->unary_op != oql::UnaryOp::Not) return nullptr;
      auto a = compile_node(e->child, schema);
      if (a == nullptr) return nullptr;
      auto node = std::make_unique<PredNode>();
      node->kind = PredNode::Kind::Not;
      node->a = std::move(a);
      return node;
    }
    case oql::ExprKind::Binary: {
      if (e->binary_op == oql::BinaryOp::And ||
          e->binary_op == oql::BinaryOp::Or) {
        auto a = compile_node(e->left, schema);
        auto b = compile_node(e->right, schema);
        if (a == nullptr || b == nullptr) return nullptr;
        auto node = std::make_unique<PredNode>();
        node->kind = e->binary_op == oql::BinaryOp::And ? PredNode::Kind::And
                                                        : PredNode::Kind::Or;
        node->a = std::move(a);
        node->b = std::move(b);
        return node;
      }
      switch (e->binary_op) {
        case oql::BinaryOp::Eq:
        case oql::BinaryOp::Ne:
        case oql::BinaryOp::Lt:
        case oql::BinaryOp::Le:
        case oql::BinaryOp::Gt:
        case oql::BinaryOp::Ge:
          break;
        default:
          return nullptr;  // arithmetic inside predicates: row path
      }
      auto node = std::make_unique<PredNode>();
      node->kind = PredNode::Kind::Cmp;
      node->op = e->binary_op;
      if (!resolve_operand(e->left, schema, &node->left_col,
                           &node->left_lit) ||
          !resolve_operand(e->right, schema, &node->right_col,
                           &node->right_lit)) {
        return nullptr;
      }
      if (node->left_col < 0 && node->right_col < 0) {
        return nullptr;  // literal-vs-literal: constant folding is the
                         // evaluator's job, keep the row path
      }
      return node;
    }
    default:
      return nullptr;
  }
}

}  // namespace

std::optional<PredicateProgram> compile_predicate(const oql::ExprPtr& expr,
                                                  const Schema& schema) {
  if (expr == nullptr || schema.shape != RowShape::Env) return std::nullopt;
  std::unique_ptr<PredNode> root = compile_node(expr, schema);
  if (root == nullptr) return std::nullopt;
  PredicateProgram program;
  program.root = std::move(root);
  return program;
}

std::vector<uint8_t> eval_predicate(const PredicateProgram& program,
                                    const ColumnBatch& batch,
                                    const std::vector<uint8_t>& candidates) {
  internal_check(candidates.size() == batch.rows,
                 "candidate mask must cover the batch");
  return eval_node(*program.root, batch, candidates);
}

std::optional<ProjectionProgram> compile_projection(const oql::ExprPtr& expr,
                                                    const Schema& schema) {
  if (expr == nullptr || schema.shape != RowShape::Env) return std::nullopt;
  ProjectionProgram program;
  if (expr->kind == oql::ExprKind::Ident) {
    // `select x ...`: the whole var becomes a Flat struct of its attrs.
    bool found = false;
    for (size_t i = 0; i < schema.columns.size(); ++i) {
      if (schema.columns[i].var != expr->name) continue;
      found = true;
      program.cols.push_back(static_cast<int>(i));
      program.out_schema.columns.push_back({"", schema.columns[i].name});
    }
    if (!found) return std::nullopt;
    program.out_schema.shape = RowShape::Flat;
    return program;
  }
  if (expr->kind == oql::ExprKind::Path &&
      expr->child->kind == oql::ExprKind::Ident) {
    const int idx = schema.index_of(expr->child->name, expr->name);
    if (idx < 0) return std::nullopt;
    program.cols.push_back(idx);
    program.out_schema.shape = RowShape::Scalar;
    program.out_schema.columns.push_back({"", ""});
    return program;
  }
  if (expr->kind == oql::ExprKind::StructCtor) {
    if (expr->struct_fields.empty()) return std::nullopt;
    for (const auto& [name, field] : expr->struct_fields) {
      if (field->kind != oql::ExprKind::Path ||
          field->child->kind != oql::ExprKind::Ident) {
        return std::nullopt;
      }
      const int idx = schema.index_of(field->child->name, field->name);
      if (idx < 0) return std::nullopt;
      program.cols.push_back(idx);
      program.out_schema.columns.push_back({"", name});
    }
    program.out_schema.shape = RowShape::Flat;
    return program;
  }
  return std::nullopt;
}

namespace {

ColumnBatch fresh_batch(size_t columns, size_t reserve_rows) {
  ColumnBatch batch;
  batch.columns.reserve(columns);
  for (size_t i = 0; i < columns; ++i) {
    auto column = std::make_shared<Column>();
    column->reserve(reserve_rows);
    batch.columns.push_back(std::move(column));
  }
  return batch;
}

void gather_row(const ColumnBatch& from, size_t row, ColumnBatch* into) {
  for (size_t c = 0; c < from.columns.size(); ++c) {
    into->columns[c]->append_cell(*from.columns[c], row);
  }
  ++into->rows;
}

}  // namespace

Table filter_table(const Table& in, const PredicateProgram& program) {
  Table out;
  out.schema = in.schema;
  for (const ColumnBatch& batch : in.batches) {
    if (batch.rows == 0) continue;
    const std::vector<uint8_t> all(batch.rows, 1);
    const std::vector<uint8_t> mask = eval_predicate(program, batch, all);
    size_t pass = 0;
    for (size_t i = 0; i < batch.rows; ++i) pass += mask[i];
    if (pass == 0) continue;
    if (pass == batch.rows) {
      out.batches.push_back(batch);  // shares columns, no copy
      continue;
    }
    ColumnBatch gathered = fresh_batch(batch.columns.size(), pass);
    for (size_t i = 0; i < batch.rows; ++i) {
      if (mask[i]) gather_row(batch, i, &gathered);
    }
    out.batches.push_back(std::move(gathered));
  }
  return out;
}

Table project_table(const Table& in, const ProjectionProgram& program) {
  Table out;
  out.schema = program.out_schema;
  for (const ColumnBatch& batch : in.batches) {
    ColumnBatch projected;
    projected.rows = batch.rows;
    projected.columns.reserve(program.cols.size());
    for (int col : program.cols) {
      projected.columns.push_back(batch.columns[col]);
    }
    out.batches.push_back(std::move(projected));
  }
  return out;
}

Table distinct_table(const Table& in, size_t batch_rows) {
  struct Ref {
    uint32_t batch;
    uint32_t row;
  };
  std::unordered_map<uint64_t, std::vector<Ref>> seen;
  std::vector<Ref> keep;
  for (uint32_t b = 0; b < in.batches.size(); ++b) {
    const ColumnBatch& batch = in.batches[b];
    for (uint32_t r = 0; r < batch.rows; ++r) {
      std::vector<Ref>& bucket = seen[hash_row(batch, r)];
      bool duplicate = false;
      for (const Ref& ref : bucket) {
        if (compare_rows(in.batches[ref.batch], ref.row, batch, r) == 0) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      bucket.push_back({b, r});
      keep.push_back({b, r});
    }
  }
  Table out;
  out.schema = in.schema;
  for (size_t i = 0; i < keep.size(); i += batch_rows) {
    const size_t n = std::min(batch_rows, keep.size() - i);
    ColumnBatch gathered = fresh_batch(in.schema.columns.size(), n);
    for (size_t j = 0; j < n; ++j) {
      const Ref& ref = keep[i + j];
      gather_row(in.batches[ref.batch], ref.row, &gathered);
    }
    out.batches.push_back(std::move(gathered));
  }
  return out;
}

Table hash_join_tables(const Table& left, const Table& right, int left_col,
                       int right_col, const PredicateProgram* residual,
                       size_t batch_rows) {
  internal_check(left.schema.shape == RowShape::Env &&
                     right.schema.shape == RowShape::Env,
                 "hash join needs env-shaped inputs");
  Table out;
  out.schema.shape = RowShape::Env;
  out.schema.columns = left.schema.columns;
  out.schema.columns.insert(out.schema.columns.end(),
                            right.schema.columns.begin(),
                            right.schema.columns.end());

  struct Ref {
    uint32_t batch;
    uint32_t row;
  };
  std::unordered_map<uint64_t, std::vector<Ref>> buckets;
  for (uint32_t b = 0; b < right.batches.size(); ++b) {
    const Column& key = *right.batches[b].columns[right_col];
    for (uint32_t r = 0; r < right.batches[b].rows; ++r) {
      buckets[key.hash_cell(r)].push_back({b, r});
    }
  }

  const size_t left_width = left.schema.columns.size();
  ColumnBatch pending = fresh_batch(out.schema.columns.size(), batch_rows);
  auto flush = [&] {
    if (pending.rows == 0) return;
    if (residual != nullptr) {
      const std::vector<uint8_t> all(pending.rows, 1);
      const std::vector<uint8_t> mask =
          eval_predicate(*residual, pending, all);
      size_t pass = 0;
      for (size_t i = 0; i < pending.rows; ++i) pass += mask[i];
      if (pass > 0 && pass < pending.rows) {
        ColumnBatch gathered = fresh_batch(pending.columns.size(), pass);
        for (size_t i = 0; i < pending.rows; ++i) {
          if (mask[i]) gather_row(pending, i, &gathered);
        }
        out.batches.push_back(std::move(gathered));
      } else if (pass == pending.rows) {
        out.batches.push_back(std::move(pending));
      }
    } else {
      out.batches.push_back(std::move(pending));
    }
    pending = fresh_batch(out.schema.columns.size(), batch_rows);
  };

  for (const ColumnBatch& lbatch : left.batches) {
    if (lbatch.rows == 0) continue;
    const Column& lkey = *lbatch.columns[left_col];
    for (uint32_t lr = 0; lr < lbatch.rows; ++lr) {
      auto it = buckets.find(lkey.hash_cell(lr));
      if (it == buckets.end()) continue;
      for (const Ref& ref : it->second) {
        const ColumnBatch& rbatch = right.batches[ref.batch];
        if (lkey.compare_cells(lr, *rbatch.columns[right_col], ref.row) !=
            0) {
          continue;  // hash collision
        }
        for (size_t c = 0; c < left_width; ++c) {
          pending.columns[c]->append_cell(*lbatch.columns[c], lr);
        }
        for (size_t c = 0; c < rbatch.columns.size(); ++c) {
          pending.columns[left_width + c]->append_cell(*rbatch.columns[c],
                                                       ref.row);
        }
        ++pending.rows;
        if (pending.rows >= batch_rows) flush();
      }
    }
  }
  flush();
  return out;
}

bool concat_tables(Table* into, Table&& part) {
  if (part.rows() == 0) return true;
  if (into->rows() == 0) {
    *into = std::move(part);
    return true;
  }
  if (!into->schema.same_layout(part.schema)) return false;
  for (ColumnBatch& batch : part.batches) {
    into->batches.push_back(std::move(batch));
  }
  return true;
}

std::optional<Value> aggregate_table(const Table& table,
                                     const std::string& fn) {
  const size_t rows = table.rows();
  if (fn == "count") return Value::integer(static_cast<int64_t>(rows));
  if (fn != "sum" && fn != "min" && fn != "max" && fn != "avg") {
    return std::nullopt;
  }
  if (rows == 0) {
    // eval_call: empty sum is Int 0, empty avg is real 0, empty min/max
    // throws — decline so the evaluator raises its own error.
    if (fn == "sum") return Value::integer(0);
    if (fn == "avg") return Value::real(0.0);
    return std::nullopt;
  }
  if (table.schema.shape != RowShape::Scalar ||
      table.schema.columns.size() != 1) {
    return std::nullopt;
  }
  if (fn == "min" || fn == "max") {
    // Value::compare over scalars, first-wins on ties (strict compare),
    // exactly as the evaluator's scan.
    const ColumnBatch* best_batch = &table.batches.front();
    size_t best_row = 0;
    for (const ColumnBatch& batch : table.batches) {
      for (size_t r = 0; r < batch.rows; ++r) {
        if (&batch == best_batch && r == 0) continue;
        const int c = batch.columns[0]->compare_cells(
            r, *best_batch->columns[0], best_row);
        if ((fn == "min" && c < 0) || (fn == "max" && c > 0)) {
          best_batch = &batch;
          best_row = r;
        }
      }
    }
    return best_batch->columns[0]->value_at(best_row);
  }
  // sum/avg: numeric, null-free columns only; the evaluator adds every
  // item as a double in row order — reproduce that exact accumulation.
  bool all_int = true;
  double total = 0;
  int64_t int_total = 0;
  for (const ColumnBatch& batch : table.batches) {
    const Column& column = *batch.columns[0];
    if (column.has_nulls()) return std::nullopt;
    if (column.type() == ColType::Int) {
      for (size_t r = 0; r < batch.rows; ++r) {
        total += static_cast<double>(column.ints()[r]);
        int_total += column.ints()[r];
      }
    } else if (column.type() == ColType::Double) {
      all_int = false;
      for (size_t r = 0; r < batch.rows; ++r) total += column.doubles()[r];
    } else {
      return std::nullopt;
    }
  }
  if (fn == "sum") {
    return all_int ? Value::integer(int_total) : Value::real(total);
  }
  return Value::real(total / static_cast<double>(rows));
}

bool vec_batchable(const algebra::LogicalPtr& node) {
  switch (node->op) {
    case algebra::LOp::Get:
      return true;
    case algebra::LOp::Filter:
      return vec_batchable(node->child);
    case algebra::LOp::Submit:
      return vec_batchable(node->child);
    case algebra::LOp::Join:
      return vec_batchable(node->left) && vec_batchable(node->right);
    case algebra::LOp::Union:
      for (const algebra::LogicalPtr& child : node->children) {
        if (!vec_batchable(child)) return false;
      }
      return !node->children.empty();
    default:
      return false;
  }
}

std::optional<Schema> static_schema(const algebra::LogicalPtr& remote,
                                    const catalog::Catalog& catalog) {
  Schema schema;
  schema.shape = RowShape::Env;
  std::function<bool(const algebra::LogicalPtr&)> collect =
      [&](const algebra::LogicalPtr& node) -> bool {
    switch (node->op) {
      case algebra::LOp::Get: {
        if (!catalog.has_extent(node->extent)) return false;
        const catalog::MetaExtent& extent = catalog.extent(node->extent);
        const std::vector<Attribute> attrs =
            catalog.types().all_attributes(extent.interface);
        if (attrs.empty()) return false;
        for (const Attribute& attr : attrs) {
          schema.columns.push_back({node->var, attr.name});
        }
        return true;
      }
      case algebra::LOp::Filter:
        return collect(node->child);
      case algebra::LOp::Join:
        return collect(node->left) && collect(node->right);
      default:
        return false;  // project-topped replies carry computed values
    }
  };
  if (!collect(remote)) return std::nullopt;
  return schema;
}

}  // namespace disco::vec
