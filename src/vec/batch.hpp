// Columnar batch representation for flat struct bags (src/vec/).
//
// The runtime's operators are row-at-a-time over the variant `Value`
// tree; that caps filter/join/union-merge throughput well below what the
// hardware allows. This module adds the batch form the ROADMAP names as
// the enabler for million-row scenarios: typed column vectors with a
// null bitmap, grouped into fixed-capacity `ColumnBatch`es, with
// `Value`<->batch converters at the runtime boundaries. `Value` trees
// stay the interchange form at the edges (OQL eval, wrapper translation,
// the result cache, answers); batches only flow between operators inside
// one `physical::Runtime::run`.
//
// Three row shapes cover everything the runtime materializes:
//   * Env:    struct(var: struct(attr: scalar), ...) — operator inputs;
//   * Flat:   struct(name: scalar, ...)              — projected structs;
//   * Scalar: a bare scalar per row                  — projected paths.
//
// Conversion is strict so that a round trip is the identity: every row
// must share the first row's exact field-name layout, and a column's
// non-null cells must share one scalar kind (Int and Double are distinct
// kinds here, exactly as in `Value`). Explicit `nil` cells set the null
// bitmap; a *missing* field, a nested collection, or a layout mismatch
// makes `from_rows` decline (nullopt) and the caller stays on the row
// path — graceful fallback, never a lossy conversion. (Re-adding a
// missing field as nil would change the struct's field count, which
// `Value::compare` observes; declining preserves bag equality.)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "value/value.hpp"

namespace disco::vec {

/// Batch-execution knobs (Mediator::Options::vec). Off by default: the
/// row path is the paper's reference semantics and the vec path is the
/// differentially-tested accelerator.
struct VecOptions {
  bool enabled = false;
  /// Fixed batch capacity: converters and batch-producing operators cut
  /// their output into chunks of at most this many rows.
  size_t batch_rows = 4096;
};

/// Storage type of one column. Untyped means no non-null cell has been
/// seen yet (an all-nil column converts and round-trips as all nils).
enum class ColType : uint8_t { Untyped, Bool, Int, Double, String };

const char* to_string(ColType type);

/// One typed column vector plus a null bitmap. Append-only while being
/// built; treated as immutable once inside a ColumnBatch (batches share
/// columns by shared_ptr, so projection is O(1) per column).
class Column {
 public:
  ColType type() const { return type_; }
  size_t size() const { return size_; }
  size_t null_count() const { return null_count_; }
  bool has_nulls() const { return null_count_ > 0; }
  bool is_null(size_t row) const {
    return (nulls_[row >> 6] >> (row & 63)) & 1;
  }

  void append_null();
  /// Appends a scalar cell; false (column unchanged) when the value is
  /// not a scalar or does not match the column's settled type.
  bool append(const Value& value);
  /// Gather: appends `from`'s cell `row` (same settled type, or null).
  void append_cell(const Column& from, size_t row);

  /// Rebuilds the cell as a Value (nil for null bits).
  Value value_at(size_t row) const;

  /// Total order over cells matching Value::compare on the rebuilt
  /// values: kind-rank major (nil < bool < numeric < string), numerics
  /// compared as doubles so Int 1 == Double 1.0.
  int compare_cells(size_t row, const Column& other, size_t other_row) const;
  int compare_cell_value(size_t row, const Value& value) const;
  /// Equality-consistent hash (Int 1 and Double 1.0 collide on purpose).
  uint64_t hash_cell(size_t row) const;

  // Typed readers for kernels (valid for the matching type() only).
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

  void reserve(size_t rows);

 private:
  bool settle(ColType type);
  void push_null_bit(bool null);

  ColType type_ = ColType::Untyped;
  size_t size_ = 0;
  size_t null_count_ = 0;
  std::vector<uint64_t> nulls_;
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

enum class RowShape : uint8_t { Scalar, Flat, Env };

const char* to_string(RowShape shape);

/// Column naming. Env columns carry (var, name); Flat columns ("", name);
/// the Scalar shape has the single column ("", ""). Layout (shape plus
/// the exact name sequence) is what must agree for two tables to union
/// batch-wise; cell types are per-Column and may differ batch to batch.
struct Schema {
  struct Col {
    std::string var;
    std::string name;
  };

  RowShape shape = RowShape::Flat;
  std::vector<Col> columns;

  bool same_layout(const Schema& other) const;
  /// Index of (var, name), or -1.
  int index_of(std::string_view var, std::string_view name) const;
};

/// A fixed-capacity chunk of rows. `rows` is authoritative (a Flat batch
/// of empty structs has zero columns but still counts rows).
struct ColumnBatch {
  std::vector<std::shared_ptr<Column>> columns;
  size_t rows = 0;
};

/// A schema plus its batches — the unit operators exchange.
struct Table {
  Schema schema;
  std::vector<ColumnBatch> batches;

  size_t rows() const;
};

/// Converts a bag's rows to columns, cut into batches of at most
/// `batch_rows` rows. nullopt when any row is not of the common flat
/// layout (see the header comment for the exact rules); the caller then
/// keeps the row path.
std::optional<Table> from_rows(const std::vector<Value>& rows,
                               size_t batch_rows);

/// Rebuilds row `row` of `batch` as a Value (exact inverse of from_rows
/// for the row that produced it).
Value row_at(const Schema& schema, const ColumnBatch& batch, size_t row);

/// Rebuilds every row. to_rows(from_rows(rows)) == rows, elementwise.
std::vector<Value> to_rows(const Table& table);

/// Lexicographic row compare / equality-consistent row hash across all
/// columns — matches Value::compare / equality of the rebuilt rows for
/// tables sharing one layout.
int compare_rows(const ColumnBatch& a, size_t row_a, const ColumnBatch& b,
                 size_t row_b);
uint64_t hash_row(const ColumnBatch& batch, size_t row);

}  // namespace disco::vec
