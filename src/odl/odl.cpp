#include "odl/odl.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "oql/lexer.hpp"
#include "oql/parser.hpp"

namespace disco::odl {

using oql::Token;
using oql::TokenKind;

namespace {

bool is_kw(const Token& token, std::string_view keyword) {
  return token.kind == TokenKind::Ident && iequals(token.text, keyword);
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  std::vector<Statement> run() {
    std::vector<Statement> out;
    while (peek().kind != TokenKind::End) {
      out.push_back(statement());
    }
    return out;
  }

 private:
  const Token& peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() {
    const Token& t = peek();
    if (t.kind != TokenKind::End) ++pos_;
    return t;
  }
  bool match(TokenKind kind) {
    if (peek().kind == kind) {
      advance();
      return true;
    }
    return false;
  }
  bool match_kw(std::string_view keyword) {
    if (is_kw(peek(), keyword)) {
      advance();
      return true;
    }
    return false;
  }
  [[noreturn]] void fail(const std::string& message) const {
    const Token& t = peek();
    throw ParseError("ODL: " + message + " (found " + to_string(t.kind) +
                         (t.text.empty() ? "" : " '" + t.text + "'") + ")",
                     t.line, t.column);
  }
  const Token& expect(TokenKind kind, std::string_view what) {
    if (peek().kind != kind) fail("expected " + std::string(what));
    return advance();
  }
  void expect_semicolon() {
    if (!match(TokenKind::Semicolon)) fail("expected ';'");
  }

  Statement statement() {
    if (is_kw(peek(), "interface")) return interface_def();
    if (is_kw(peek(), "extent")) return extent_def();
    if (is_kw(peek(), "drop")) {
      advance();
      if (!match_kw("extent")) fail("expected 'extent' after 'drop'");
      DropExtent drop;
      drop.name = expect(TokenKind::Ident, "extent name").text;
      expect_semicolon();
      return drop;
    }
    if (is_kw(peek(), "define")) return view_def();
    if (peek().kind == TokenKind::Ident &&
        peek(1).kind == TokenKind::Colon && peek(2).kind == TokenKind::Eq) {
      return assignment();
    }
    fail("expected interface / extent / define / assignment");
  }

  Statement interface_def() {
    advance();  // interface
    InterfaceDef def;
    def.type.name = expect(TokenKind::Ident, "interface name").text;
    // Optional clauses in either order: (extent e) and : Super.
    for (int i = 0; i < 2; ++i) {
      if (peek().kind == TokenKind::LParen) {
        advance();
        if (!match_kw("extent")) fail("expected 'extent' in interface head");
        def.type.implicit_extent =
            expect(TokenKind::Ident, "implicit extent name").text;
        expect(TokenKind::RParen, "')'");
      } else if (peek().kind == TokenKind::Colon) {
        advance();
        def.type.super = expect(TokenKind::Ident, "supertype name").text;
      }
    }
    expect(TokenKind::LBrace, "'{'");
    while (!match(TokenKind::RBrace)) {
      if (!match_kw("attribute")) fail("expected 'attribute' or '}'");
      const Token& type_name = expect(TokenKind::Ident, "attribute type");
      auto scalar = scalar_type_from_name(type_name.text);
      if (!scalar.has_value()) {
        throw ParseError("ODL: unknown attribute type '" + type_name.text +
                             "'",
                         type_name.line, type_name.column);
      }
      const Token& attr_name = expect(TokenKind::Ident, "attribute name");
      def.type.attributes.push_back(Attribute{attr_name.text, *scalar});
      expect_semicolon();
    }
    expect_semicolon();
    return def;
  }

  Statement extent_def() {
    advance();  // extent
    ExtentDef def;
    def.extent.name = expect(TokenKind::Ident, "extent name").text;
    if (!match_kw("of")) fail("expected 'of'");
    def.extent.interface = expect(TokenKind::Ident, "interface name").text;
    if (!match_kw("wrapper")) fail("expected 'wrapper'");
    def.extent.wrapper = expect(TokenKind::Ident, "wrapper name").text;
    if (!match_kw("repository")) fail("expected 'repository'");
    def.extent.repository = expect(TokenKind::Ident, "repository name").text;
    if (match_kw("map")) {
      def.extent.map = map_clause(def.extent.name);
    }
    expect_semicolon();
    return def;
  }

  /// map ((person0=personprime0),(name=n),(salary=s))
  /// First pair: source relation = extent name; rest: source = mediator.
  /// The source side of a field pair may be a *path expression* into a
  /// semi-structured source: dotted names parse directly
  /// ((meta.site=site)) and anything the lexer cannot spell — array
  /// steps like items[*].id — is written as a string literal
  /// (("items[*].id"=ids)). The docstore wrapper interprets these with
  /// docstore::DocPath; flat sources never see them.
  catalog::TypeMap map_clause(const std::string& extent_name) {
    expect(TokenKind::LParen, "'(' after map");
    std::string source_relation;
    std::vector<std::pair<std::string, std::string>> fields;
    bool first = true;
    do {
      expect(TokenKind::LParen, "'(' opening a map pair");
      std::string lhs;
      if (peek().kind == TokenKind::StringLit) {
        lhs = advance().text;
      } else {
        lhs = expect(TokenKind::Ident, "map name").text;
        while (match(TokenKind::Dot)) {
          lhs += "." + expect(TokenKind::Ident, "map path step").text;
        }
      }
      expect(TokenKind::Eq, "'='");
      std::string rhs = expect(TokenKind::Ident, "map name").text;
      expect(TokenKind::RParen, "')' closing a map pair");
      if (first && rhs == extent_name) {
        source_relation = lhs;
      } else {
        fields.emplace_back(std::move(lhs), std::move(rhs));
      }
      first = false;
    } while (match(TokenKind::Comma));
    expect(TokenKind::RParen, "')' closing the map");
    return catalog::TypeMap(std::move(source_relation), std::move(fields));
  }

  Statement view_def() {
    advance();  // define
    ViewDefStmt def;
    def.name = expect(TokenKind::Ident, "view name").text;
    if (!match_kw("as")) fail("expected 'as'");
    def.query = oql::parse_expression(tokens_, pos_);
    expect_semicolon();
    return def;
  }

  Statement assignment() {
    Assignment def;
    def.var = advance().text;  // var
    advance();                 // ':'
    advance();                 // '='
    def.constructor = expect(TokenKind::Ident, "constructor name").text;
    expect(TokenKind::LParen, "'('");
    if (peek().kind != TokenKind::RParen) {
      do {
        std::string key = expect(TokenKind::Ident, "argument name").text;
        expect(TokenKind::Eq, "'='");
        const Token& value = expect(TokenKind::StringLit, "string value");
        def.args.emplace_back(std::move(key), value.text);
      } while (match(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "')'");
    expect_semicolon();
    return def;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<Statement> parse_odl(const std::string& text) {
  return Parser(oql::tokenize(text)).run();
}

}  // namespace disco::odl
