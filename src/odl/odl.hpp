// ODL parser: ODMG ODL plus the two DISCO extensions (§2 of the paper).
//
// Supported statements, each terminated by ';':
//
//   interface Person (extent person) {
//     attribute String name;
//     attribute Short salary; };
//
//   interface Student : Person { };                       // subtyping
//
//   extent person0 of Person wrapper w0 repository r0;    // DISCO ext.
//   extent pp0 of PersonPrime wrapper w0 repository r0
//     map ((person0=pp0),(name=n),(salary=s));            // §2.2.2
//   drop extent person0;
//
//   define person as flatten(select x.e from x in metaextent
//                            where x.interface = Person); // views, §2.2.3
//
//   r0 := Repository(host="rodin", name="db", address="123.45.6.7");
//   w0 := WrapperMiniSql();                               // §2.1 objects
//
// The parser produces statements; interpretation (creating repository
// objects, binding wrapper factories) is the mediator's job.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "catalog/catalog.hpp"
#include "oql/ast.hpp"
#include "types/type_registry.hpp"

namespace disco::odl {

struct InterfaceDef {
  InterfaceType type;
};

struct ExtentDef {
  catalog::MetaExtent extent;
};

/// `drop extent person1;` — removing a data source from the mediator is
/// as cheap as adding one (§2.1: extents "can be added and deleted").
struct DropExtent {
  std::string name;
};

struct ViewDefStmt {
  std::string name;
  oql::ExprPtr query;
};

/// `var := Constructor(key="value", ...)` — used for Repository and
/// wrapper objects. Values are string literals; non-string args are not
/// needed by the paper's examples.
struct Assignment {
  std::string var;
  std::string constructor;
  std::vector<std::pair<std::string, std::string>> args;
};

using Statement = std::variant<InterfaceDef, ExtentDef, DropExtent,
                               ViewDefStmt, Assignment>;

/// Parses a sequence of ODL statements. Throws ParseError / LexError.
std::vector<Statement> parse_odl(const std::string& text);

}  // namespace disco::odl
