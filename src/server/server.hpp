// The mediator daemon (src/server/): a socket front-end for one
// Mediator.
//
// The paper's Prototype-0 runs mediator and application in one process;
// a scaled federation serves many applications at once, so the mediator
// grows a network face. One Server wraps one Mediator behind a TCP
// listener speaking the frame protocol of protocol.hpp:
//
//   * a single poll()-based IO thread owns the listener and every
//     connection (non-blocking sockets, per-connection read/write
//     buffers and a FrameDecoder) — no thread-per-connection,
//   * requests dispatch inline onto the mediator, whose session layer
//     (SessionOptions::workers) and exec pool supply the parallelism;
//     SUBMIT returns immediately with the query id,
//   * subscriptions push: SUBMIT{subscribe} or SUBSCRIBE attach
//     QueryHandle callbacks (on_progress/on_complete/on_settled) that
//     enqueue PARTIAL / COMPLETE / QUERY_FAILED frames through a wake
//     pipe into the IO thread — §4 partial answers stream to the client
//     as sources recover, over the same connection that submitted,
//   * per-connection backpressure (sched::ConnBackpressure): too many
//     unsettled submits or an undrained write buffer turns new SUBMITs
//     into typed BUSY replies instead of unbounded queueing,
//   * a dropped connection cancels its pending queries
//     (Mediator::cancel), so abandoned clients leak neither scheduler
//     tokens nor cache leader tickets.
//
// Counters land in the mediator's obs registry under "server.*", so
// obs_snapshot() stays the single pane of glass.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "core/mediator.hpp"
#include "sched/backpressure.hpp"

namespace disco::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the OS picks, Server::port() reports.
  uint16_t port = 0;
  /// Connections beyond this are accepted and immediately closed.
  size_t max_connections = 256;
  sched::BackpressureOptions backpressure;
};

class Server {
 public:
  /// Binds and listens; throws ExecutionError when the address is taken.
  /// The mediator must outlive the server.
  Server(Mediator& mediator, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts the IO thread. Idempotent.
  void start();
  /// Stops the IO thread and closes every connection. Subscription
  /// callbacks still registered on live sessions become no-ops (they
  /// hold weak references to the push hub). Idempotent; also run by the
  /// destructor.
  void stop();

  /// The bound TCP port (resolves ephemeral binds).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Connections currently open.
  size_t connections() const;

  sched::ConnBackpressure::Stats backpressure_stats() const {
    return backpressure_->stats();
  }

 private:
  struct Impl;
  ServerOptions options_;
  uint16_t port_ = 0;
  std::unique_ptr<sched::ConnBackpressure> backpressure_;
  std::unique_ptr<Impl> impl_;
  std::thread io_thread_;
};

}  // namespace disco::server
