// Minimal JSON for the wire protocol (src/server/).
//
// Frame payloads are JSON. The rest of the tree only ever *emits* JSON
// (obs snapshots, Chrome traces); the daemon and its client must also
// *parse* it, so this module carries a small document model plus a
// strict recursive-descent parser — objects, arrays, strings (with full
// escape handling), numbers, booleans, null. No dependencies beyond
// obs::json_escape for symmetric output.
//
// Numbers remember whether they were written as integers, so query ids
// (uint64) round-trip exactly through the id range the session layer
// actually mints; as_uint64() accepts either form when integral.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace disco::server::json {

/// Thrown on malformed documents; the server maps it to a typed ERROR
/// frame ("bad_json"), never a crash.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& message)
      : std::runtime_error(message) {}
};

class Value {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };
  using Member = std::pair<std::string, Value>;

  Value() = default;  // null
  static Value boolean(bool v);
  static Value integer(int64_t v);
  static Value unsigned_integer(uint64_t v);
  static Value real(double v);
  static Value string(std::string v);
  static Value array(std::vector<Value> items);
  static Value object(std::vector<Member> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }

  /// Accessors throw JsonError on kind mismatch.
  bool as_bool() const;
  int64_t as_int64() const;
  /// Either integer form, or a double holding an exact non-negative
  /// integral value.
  uint64_t as_uint64() const;
  double as_double() const;  ///< numeric coercion: Int widens
  const std::string& as_string() const;
  const std::vector<Value>& items() const;            ///< arrays
  const std::vector<Member>& members() const;         ///< objects

  /// Object member by key, or nullptr (nullptr for non-objects too).
  const Value* find(std::string_view key) const;
  /// Object member by key; throws JsonError when missing.
  const Value& at(std::string_view key) const;

  /// Serializes with escaped strings; parse(dump()) round-trips.
  std::string dump() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

/// Strict parse of one JSON document (trailing garbage rejected).
/// Throws JsonError.
Value parse(const std::string& text);

}  // namespace disco::server::json
