// ODMG Value <-> wire JSON conversion (src/server/).
//
// The daemon ships answers as JSON; clients that feed rows back into a
// mediator (the hierarchical MediatorSource in src/fedcat/) need the
// inverse. The mapping is faithful for everything that crosses the
// wrapper boundary: Int and Double stay distinct (json::Value remembers
// integer-ness), structs keep field order. Collection *flavor* is not on
// the wire — bags, sets and lists all serialize as arrays, and
// json_to_value reads every array back as a bag, the shape wrapper
// answers use.
#pragma once

#include "server/json.hpp"
#include "value/value.hpp"

namespace disco::server {

/// ODMG value -> JSON: collections become arrays, structs objects.
json::Value value_to_json(const Value& value);

/// JSON -> ODMG value: arrays become bags, objects structs. Throws
/// JsonError only via malformed accessor use (any well-formed document
/// converts).
Value json_to_value(const json::Value& value);

}  // namespace disco::server
