#include "server/server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "server/json.hpp"
#include "server/protocol.hpp"
#include "server/values.hpp"

namespace disco::server {
namespace {

/// The answer body shared by ANSWER replies and PARTIAL/COMPLETE pushes.
json::Value answer_event(uint64_t id, const Answer& answer) {
  std::vector<json::Value::Member> members;
  members.emplace_back("id", json::Value::unsigned_integer(id));
  members.emplace_back("complete", json::Value::boolean(answer.complete()));
  members.emplace_back("rows", value_to_json(answer.data()));
  std::vector<json::Value> residuals;
  for (const std::string& r : answer.residual_queries()) {
    residuals.push_back(json::Value::string(r));
  }
  members.emplace_back("residuals", json::Value::array(std::move(residuals)));
  return json::Value::object(std::move(members));
}

/// Full POLL reply: the answer body plus session state/resubmissions.
json::Value answer_reply(uint64_t id, const session::QueryHandle& handle) {
  const session::SessionState state = handle.state();
  std::vector<json::Value::Member> members;
  members.emplace_back("id", json::Value::unsigned_integer(id));
  members.emplace_back("state",
                       json::Value::string(session::to_string(state)));
  members.emplace_back(
      "resubmissions",
      json::Value::unsigned_integer(handle.resubmissions()));
  try {
    const Answer answer = handle.snapshot();
    members.emplace_back("complete", json::Value::boolean(answer.complete()));
    members.emplace_back("rows", value_to_json(answer.data()));
    std::vector<json::Value> residuals;
    for (const std::string& r : answer.residual_queries()) {
      residuals.push_back(json::Value::string(r));
    }
    members.emplace_back("residuals",
                         json::Value::array(std::move(residuals)));
  } catch (const std::exception& e) {
    // Failed sessions have no snapshot; the error IS the answer.
    members.emplace_back("complete", json::Value::boolean(false));
    members.emplace_back("error", json::Value::string(e.what()));
  }
  return json::Value::object(std::move(members));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// Cross-thread push channel. Session-manager threads enqueue encoded
/// frames here and tickle the wake pipe; the IO thread drains the queue
/// into per-connection write buffers. Subscription callbacks hold this
/// only weakly, so a stopped (or destroyed) server turns them into
/// no-ops — and `stopped` is flipped under the mutex *before* the pipe
/// closes, so no callback can write into a dead fd.
struct PushHub {
  struct Push {
    uint64_t conn_id = 0;
    std::string frame;
  };

  std::mutex mutex;
  bool stopped = false;
  int wake_fd = -1;  ///< write end of the IO thread's wake pipe
  std::vector<Push> queue;

  void push(uint64_t conn_id, std::string frame) {
    std::lock_guard<std::mutex> lock(mutex);
    if (stopped) return;
    queue.push_back({conn_id, std::move(frame)});
    const char byte = 1;
    // EAGAIN (pipe full) is fine: pending bytes already guarantee a wake.
    (void)!::write(wake_fd, &byte, 1);
  }

  std::vector<Push> drain() {
    std::lock_guard<std::mutex> lock(mutex);
    return std::exchange(queue, {});
  }
};

namespace {
void enqueue_push(const std::weak_ptr<PushHub>& weak, uint64_t conn_id,
                  std::string frame) {
  if (std::shared_ptr<PushHub> hub = weak.lock()) {
    hub->push(conn_id, std::move(frame));
  }
}
}  // namespace

struct Server::Impl {
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    FrameDecoder decoder;
    std::string out;       ///< queued reply/push bytes
    size_t out_off = 0;    ///< sent prefix of `out`
    bool close_after_flush = false;
    std::vector<uint64_t> owned;  ///< query ids this conn submitted
  };

  Mediator& mediator;
  ServerOptions options;
  sched::ConnBackpressure& backpressure;

  int listen_fd = -1;
  int wake_read_fd = -1;
  std::shared_ptr<PushHub> hub;
  std::atomic<bool> stop_requested{false};
  std::atomic<size_t> conn_count{0};

  std::unordered_map<uint64_t, Conn> conns;
  uint64_t next_conn_id = 1;

  // server.* counters in the mediator's registry (single pane of glass).
  obs::Counter& c_accepted;
  obs::Counter& c_rejected;
  obs::Counter& c_disconnects;
  obs::Counter& c_frames_in;
  obs::Counter& c_frames_out;
  obs::Counter& c_bytes_in;
  obs::Counter& c_bytes_out;
  obs::Counter& c_submits;
  obs::Counter& c_busy;
  obs::Counter& c_errors;
  obs::Counter& c_pushes;

  Impl(Mediator& m, ServerOptions o, sched::ConnBackpressure& bp)
      : mediator(m),
        options(std::move(o)),
        backpressure(bp),
        c_accepted(m.obs_registry().counter("server.connections.accepted")),
        c_rejected(m.obs_registry().counter("server.connections.rejected")),
        c_disconnects(m.obs_registry().counter("server.connections.closed")),
        c_frames_in(m.obs_registry().counter("server.frames.in")),
        c_frames_out(m.obs_registry().counter("server.frames.out")),
        c_bytes_in(m.obs_registry().counter("server.bytes.in")),
        c_bytes_out(m.obs_registry().counter("server.bytes.out")),
        c_submits(m.obs_registry().counter("server.submits")),
        c_busy(m.obs_registry().counter("server.busy")),
        c_errors(m.obs_registry().counter("server.errors")),
        c_pushes(m.obs_registry().counter("server.pushes")) {}

  // -- outgoing frames -------------------------------------------------------

  void send(Conn& conn, FrameType type, const std::string& payload) {
    conn.out += encode_frame(type, payload);
    c_frames_out.add();
  }

  void send_error(Conn& conn, const char* code, const std::string& message) {
    c_errors.add();
    send(conn, FrameType::kError,
         json::Value::object({{"code", json::Value::string(code)},
                              {"message", json::Value::string(message)}})
             .dump());
  }

  /// Drains as much of the write buffer as the socket accepts.
  /// Returns false when the connection must close.
  bool flush(Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      const ssize_t sent =
          ::send(conn.fd, conn.out.data() + conn.out_off,
                 conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (sent > 0) {
        conn.out_off += static_cast<size_t>(sent);
        c_bytes_out.add(static_cast<uint64_t>(sent));
        continue;
      }
      if (sent < 0 && errno == EINTR) continue;
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
      if (conn.close_after_flush) return false;
    } else if (conn.out_off > 65536 && conn.out_off * 2 > conn.out.size()) {
      conn.out.erase(0, conn.out_off);
      conn.out_off = 0;
    }
    return true;
  }

  // -- request handling ------------------------------------------------------

  /// Owned submits whose sessions are still Pending; prunes ids already
  /// released from the registry so the vector stays bounded.
  size_t live_submits(Conn& conn) {
    size_t live = 0;
    std::vector<uint64_t> kept;
    kept.reserve(conn.owned.size());
    for (uint64_t id : conn.owned) {
      const session::QueryHandle handle = mediator.find_handle(id);
      if (!handle.valid()) continue;
      kept.push_back(id);
      if (handle.state() == session::SessionState::Pending) ++live;
    }
    conn.owned = std::move(kept);
    return live;
  }

  void attach_subscription(uint64_t conn_id, session::QueryHandle& handle) {
    // Callbacks must not capture the handle itself: they are stored in
    // the session, and a handle capture would make the session own a
    // shared_ptr to itself. The hub is held weakly so a stopped server
    // turns every pending callback into a no-op.
    const uint64_t qid = handle.id();
    std::weak_ptr<PushHub> weak = hub;
    handle.on_progress([weak, conn_id, qid](const Answer& answer) {
      enqueue_push(weak, conn_id,
                   encode_frame(FrameType::kPartial,
                                answer_event(qid, answer).dump()));
    });
    handle.on_complete([weak, conn_id, qid](const Answer& answer) {
      enqueue_push(weak, conn_id,
                   encode_frame(FrameType::kComplete,
                                answer_event(qid, answer).dump()));
    });
    handle.on_settled([weak, conn_id, qid](session::SessionState state) {
      if (state != session::SessionState::Failed) return;
      enqueue_push(
          weak, conn_id,
          encode_frame(
              FrameType::kQueryFailed,
              json::Value::object(
                  {{"id", json::Value::unsigned_integer(qid)},
                   {"state",
                    json::Value::string(session::to_string(state))}})
                  .dump()));
    });
  }

  void handle_submit(Conn& conn, const json::Value& req) {
    const std::string& oql = req.at("oql").as_string();
    QueryOptions qopts;
    if (const json::Value* d = req.find("deadline_s")) {
      qopts.deadline_s = d->as_double();
    }
    bool subscribe = false;
    if (const json::Value* s = req.find("subscribe")) {
      subscribe = s->as_bool();
    }

    const size_t live = live_submits(conn);
    const size_t buffered = conn.out.size() - conn.out_off;
    const auto verdict = backpressure.admit(live, buffered);
    if (verdict != sched::ConnBackpressure::Verdict::Admit) {
      c_busy.add();
      const size_t limit =
          verdict == sched::ConnBackpressure::Verdict::BusyInflight
              ? backpressure.options().max_inflight_per_conn
              : backpressure.options().write_high_water_bytes;
      send(conn, FrameType::kBusy,
           json::Value::object(
               {{"reason", json::Value::string(to_string(verdict))},
                {"limit", json::Value::unsigned_integer(limit)}})
               .dump());
      return;
    }

    session::QueryHandle handle;
    try {
      handle = mediator.submit(oql, qopts);
    } catch (const std::exception& e) {
      send_error(conn, error_code::kQueryError, e.what());
      return;
    }
    c_submits.add();
    conn.owned.push_back(handle.id());
    if (subscribe) attach_subscription(conn.id, handle);
    send(conn, FrameType::kSubmitted,
         json::Value::object(
             {{"id", json::Value::unsigned_integer(handle.id())}})
             .dump());
  }

  void handle_poll(Conn& conn, const json::Value& req) {
    const uint64_t id = req.at("id").as_uint64();
    const session::QueryHandle handle = mediator.find_handle(id);
    if (!handle.valid()) {
      send_error(conn, error_code::kUnknownQuery,
                 "unknown query id " + std::to_string(id));
      return;
    }
    send(conn, FrameType::kAnswer, answer_reply(id, handle).dump());
  }

  void handle_cancel(Conn& conn, const json::Value& req) {
    const uint64_t id = req.at("id").as_uint64();
    bool release_only = false;
    if (const json::Value* r = req.find("release")) {
      release_only = r->as_bool();
    }
    const bool found =
        release_only ? mediator.release_handle(id) : mediator.cancel(id);
    if (!found) {
      send_error(conn, error_code::kUnknownQuery,
                 "unknown query id " + std::to_string(id));
      return;
    }
    send(conn, FrameType::kOk,
         json::Value::object({{"id", json::Value::unsigned_integer(id)}})
             .dump());
  }

  void handle_subscribe(Conn& conn, const json::Value& req) {
    const uint64_t id = req.at("id").as_uint64();
    session::QueryHandle handle = mediator.find_handle(id);
    if (!handle.valid()) {
      send_error(conn, error_code::kUnknownQuery,
                 "unknown query id " + std::to_string(id));
      return;
    }
    attach_subscription(conn.id, handle);
    send(conn, FrameType::kOk,
         json::Value::object({{"id", json::Value::unsigned_integer(id)}})
             .dump());
  }

  void handle_explain(Conn& conn, const json::Value& req) {
    const std::string& oql = req.at("oql").as_string();
    std::string text;
    try {
      text = mediator.explain(oql);
    } catch (const std::exception& e) {
      send_error(conn, error_code::kQueryError, e.what());
      return;
    }
    send(conn, FrameType::kExplainResult,
         json::Value::object({{"text", json::Value::string(std::move(text))}})
             .dump());
  }

  void handle_stats(Conn& conn) {
    const sched::SchedStats sched = mediator.sched_stats();
    const sched::ConnBackpressure::Stats bp = backpressure.stats();
    std::vector<json::Value::Member> server_members{
        {"connections",
         json::Value::unsigned_integer(conn_count.load())},
        {"accepted", json::Value::unsigned_integer(c_accepted.value())},
        {"frames_in", json::Value::unsigned_integer(c_frames_in.value())},
        {"frames_out", json::Value::unsigned_integer(c_frames_out.value())},
        {"submits", json::Value::unsigned_integer(c_submits.value())},
        {"pushes", json::Value::unsigned_integer(c_pushes.value())},
        {"busy", json::Value::unsigned_integer(c_busy.value())},
        {"errors", json::Value::unsigned_integer(c_errors.value())},
        {"backpressure",
         json::Value::object(
             {{"admitted", json::Value::unsigned_integer(bp.admitted)},
              {"busy_inflight",
               json::Value::unsigned_integer(bp.busy_inflight)},
              {"busy_write", json::Value::unsigned_integer(bp.busy_write)}})},
    };
    // Embedding by parse() (not raw splicing) is deliberate: it asserts
    // on every STATS that the obs/cache emitters produce valid JSON even
    // with hostile repository names.
    json::Value payload = json::Value::object({
        {"server", json::Value::object(std::move(server_members))},
        {"obs", json::parse(mediator.obs_snapshot().to_json())},
        {"cache", json::parse(mediator.cache_stats_json())},
        {"sched",
         json::Value::object(
             {{"admitted", json::Value::unsigned_integer(sched.admitted)},
              {"queued_calls",
               json::Value::unsigned_integer(sched.queued_calls)},
              {"shed", json::Value::unsigned_integer(sched.shed)}})},
    });
    send(conn, FrameType::kStatsResult, payload.dump());
  }

  void dispatch(Conn& conn, const Frame& frame) {
    if (!is_request(frame.type)) {
      send_error(conn, error_code::kUnknownType,
                 "unknown request type " +
                     std::to_string(static_cast<unsigned>(frame.type)));
      return;
    }
    json::Value req;
    try {
      req = json::parse(frame.payload.empty() ? std::string("{}")
                                              : frame.payload);
    } catch (const json::JsonError& e) {
      send_error(conn, error_code::kBadJson, e.what());
      return;
    }
    try {
      switch (frame.type) {
        case FrameType::kSubmit:
          handle_submit(conn, req);
          break;
        case FrameType::kPoll:
          handle_poll(conn, req);
          break;
        case FrameType::kCancel:
          handle_cancel(conn, req);
          break;
        case FrameType::kSubscribe:
          handle_subscribe(conn, req);
          break;
        case FrameType::kExplain:
          handle_explain(conn, req);
          break;
        case FrameType::kStats:
          handle_stats(conn);
          break;
        default:
          break;  // unreachable: is_request() filtered
      }
    } catch (const json::JsonError& e) {
      // Missing/mistyped request members.
      send_error(conn, error_code::kBadRequest, e.what());
    } catch (const std::exception& e) {
      send_error(conn, error_code::kInternal, e.what());
    }
  }

  /// Extracts and dispatches every buffered frame. A framing error
  /// queues an ERROR and schedules close-after-flush (the byte stream
  /// cannot be resynchronized).
  void drain_frames(Conn& conn) {
    Frame frame;
    std::string error;
    while (!conn.close_after_flush) {
      const FrameDecoder::Status status = conn.decoder.next(&frame, &error);
      if (status == FrameDecoder::Status::kNeedMore) return;
      if (status == FrameDecoder::Status::kBad) {
        send_error(conn, error_code::kBadFrame, error);
        conn.close_after_flush = true;
        return;
      }
      c_frames_in.add();
      dispatch(conn, frame);
    }
  }

  /// Returns false when the connection closed or errored.
  bool read_conn(Conn& conn) {
    char buf[65536];
    for (;;) {
      const ssize_t got = ::recv(conn.fd, buf, sizeof buf, 0);
      if (got > 0) {
        c_bytes_in.add(static_cast<uint64_t>(got));
        conn.decoder.feed(buf, static_cast<size_t>(got));
        drain_frames(conn);
        if (static_cast<size_t>(got) < sizeof buf) return true;
        continue;
      }
      if (got == 0) return false;  // peer closed
      if (errno == EINTR) continue;
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
  }

  /// Closes the socket and cancels every query the connection still
  /// owns: pending resubmissions drop, scheduler tokens and cache leader
  /// tickets release, registry entries free.
  void close_conn(Conn& conn) {
    for (uint64_t id : conn.owned) (void)mediator.cancel(id);
    ::close(conn.fd);
    conn.fd = -1;
    c_disconnects.add();
    conn_count.fetch_sub(1);
  }

  void accept_loop() {
    for (;;) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient error: try again next poll round
      }
      if (conns.size() >= options.max_connections) {
        c_rejected.add();
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      Conn conn;
      conn.fd = fd;
      conn.id = next_conn_id++;
      const uint64_t id = conn.id;
      conns.emplace(id, std::move(conn));
      c_accepted.add();
      conn_count.fetch_add(1);
    }
  }

  /// Moves pushed frames from the hub into their connections' write
  /// buffers (connections that disconnected meanwhile drop theirs).
  void drain_pushes() {
    for (PushHub::Push& push : hub->drain()) {
      auto it = conns.find(push.conn_id);
      if (it == conns.end()) continue;
      it->second.out += push.frame;
      c_pushes.add();
      c_frames_out.add();
    }
  }

  void run() {
    std::vector<pollfd> pfds;
    std::vector<uint64_t> pfd_conn;
    std::vector<uint64_t> doomed;
    while (!stop_requested.load(std::memory_order_acquire)) {
      pfds.clear();
      pfd_conn.clear();
      pfds.push_back({listen_fd, POLLIN, 0});
      pfds.push_back({wake_read_fd, POLLIN, 0});
      for (auto& [id, conn] : conns) {
        short events = POLLIN;
        if (conn.out_off < conn.out.size()) events |= POLLOUT;
        pfds.push_back({conn.fd, events, 0});
        pfd_conn.push_back(id);
      }

      const int ready = ::poll(pfds.data(), pfds.size(), 100);
      if (ready < 0 && errno != EINTR) break;
      if (stop_requested.load(std::memory_order_acquire)) break;

      if (pfds[1].revents & POLLIN) {
        char sink[256];
        while (::read(wake_read_fd, sink, sizeof sink) > 0) {
        }
      }
      // Drain pushes every round (cheap when empty) — a wake byte that
      // raced with the poll timeout must not strand its frame.
      drain_pushes();

      if (pfds[0].revents & POLLIN) accept_loop();

      doomed.clear();
      for (size_t i = 2; i < pfds.size(); ++i) {
        const uint64_t id = pfd_conn[i - 2];
        auto it = conns.find(id);
        if (it == conns.end()) continue;
        Conn& conn = it->second;
        bool alive = true;
        if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) alive = false;
        if (alive && (pfds[i].revents & POLLIN)) alive = read_conn(conn);
        if (alive) alive = flush(conn);
        if (!alive) doomed.push_back(id);
      }
      // Connections that only got pushed-to (no poll event) still need a
      // flush attempt, or a push-only stream would wait for unrelated IO.
      for (auto& [id, conn] : conns) {
        if (conn.fd < 0) continue;
        if (conn.out_off < conn.out.size() || conn.close_after_flush) {
          if (!flush(conn)) doomed.push_back(id);
        }
      }
      for (uint64_t id : doomed) {
        auto it = conns.find(id);
        if (it == conns.end()) continue;
        close_conn(it->second);
        conns.erase(it);
      }
    }
    for (auto& [id, conn] : conns) close_conn(conn);
    conns.clear();
  }
};

Server::Server(Mediator& mediator, ServerOptions options)
    : options_(std::move(options)),
      backpressure_(std::make_unique<sched::ConnBackpressure>(
          options_.backpressure)) {
  impl_ = std::make_unique<Impl>(mediator, options_, *backpressure_);

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw ExecutionError("server: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw ExecutionError("server: bad host address " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw ExecutionError("server: bind(" + options_.host + ":" +
                         std::to_string(options_.port) +
                         ") failed: " + std::strerror(err));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    throw ExecutionError("server: listen() failed");
  }
  set_nonblocking(fd);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(fd);
    throw ExecutionError("server: pipe2() failed");
  }

  impl_->listen_fd = fd;
  impl_->wake_read_fd = pipe_fds[0];
  impl_->hub = std::make_shared<PushHub>();
  impl_->hub->wake_fd = pipe_fds[1];
}

Server::~Server() { stop(); }

void Server::start() {
  if (io_thread_.joinable()) return;
  impl_->stop_requested.store(false, std::memory_order_release);
  io_thread_ = std::thread([this] { impl_->run(); });
}

void Server::stop() {
  if (impl_ == nullptr) return;
  int wake_fd = -1;
  {
    // Flip stopped under the hub mutex BEFORE closing the pipe: any
    // callback already inside push() finishes its write first, and
    // every later callback sees stopped and returns.
    std::lock_guard<std::mutex> lock(impl_->hub->mutex);
    if (!impl_->hub->stopped) {
      impl_->hub->stopped = true;
      wake_fd = impl_->hub->wake_fd;
      impl_->hub->wake_fd = -1;
    }
  }
  impl_->stop_requested.store(true, std::memory_order_release);
  if (wake_fd >= 0) {
    const char byte = 1;
    (void)!::write(wake_fd, &byte, 1);
  }
  if (io_thread_.joinable()) io_thread_.join();
  if (wake_fd >= 0) ::close(wake_fd);
  if (impl_->wake_read_fd >= 0) {
    ::close(impl_->wake_read_fd);
    impl_->wake_read_fd = -1;
  }
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
}

size_t Server::connections() const { return impl_->conn_count.load(); }

}  // namespace disco::server
