// Blocking client for the mediator daemon (src/server/).
//
// One Client owns one TCP connection and speaks the frame protocol of
// protocol.hpp. Requests are synchronous: call() sends one frame and
// returns the matching reply. Push frames (PARTIAL / COMPLETE /
// QUERY_FAILED) may arrive interleaved with replies; the client buffers
// them into an event queue consumed with next_event() — so an
// application can submit with subscribe, keep issuing requests, and
// still observe every streamed partial answer in order.
//
// Thread safety: none. One Client per thread (the protocol itself is
// connection-oriented; open more connections for more threads).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "server/json.hpp"
#include "server/protocol.hpp"

namespace disco::server {

/// A reply or push frame with its payload parsed.
struct Response {
  FrameType type = FrameType::kError;
  json::Value payload;

  bool is_error() const { return type == FrameType::kError; }
  bool is_busy() const { return type == FrameType::kBusy; }
};

class Client {
 public:
  /// Connects (blocking); throws ExecutionError on failure.
  Client(const std::string& host, uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }
  void close();

  // -- typed requests --------------------------------------------------------
  /// SUBMIT. The reply is SUBMITTED {"id"}, BUSY, or ERROR.
  Response submit(const std::string& oql,
                  double deadline_s = std::numeric_limits<double>::infinity(),
                  bool subscribe = false);
  /// SUBMIT and unwrap the id; throws ExecutionError on BUSY/ERROR.
  uint64_t submit_id(const std::string& oql,
                     double deadline_s = std::numeric_limits<double>::infinity(),
                     bool subscribe = false);
  Response poll(uint64_t id);
  Response cancel(uint64_t id, bool release_only = false);
  Response subscribe(uint64_t id);
  Response explain(const std::string& oql);
  Response stats();

  /// Sends one request frame and blocks for its reply; pushes that
  /// arrive first are queued for next_event().
  Response call(FrameType type, const json::Value& payload);

  // -- streamed events -------------------------------------------------------
  /// Next push frame: from the buffer, else read from the socket until
  /// one arrives or `timeout_s` passes (nullopt on timeout).
  std::optional<Response> next_event(double timeout_s);
  /// Blocks until a push for `id` of one of `types` arrives; other ids'
  /// events stay queued. nullopt on timeout.
  std::optional<Response> wait_event(uint64_t id,
                                     std::vector<FrameType> types,
                                     double timeout_s);

  // -- raw access (protocol tests) -------------------------------------------
  /// Writes arbitrary bytes to the socket (not necessarily a frame).
  void send_raw(const std::string& bytes);
  /// Reads one frame (any type), bypassing the event queue split.
  /// nullopt on timeout; throws ExecutionError when the server closed.
  std::optional<Frame> recv_frame(double timeout_s);

 private:
  /// One frame off the decoder/socket. nullopt on timeout.
  std::optional<Frame> read_frame(double timeout_s);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::vector<Response> events_;  ///< buffered pushes, FIFO
};

}  // namespace disco::server
