#include "server/protocol.hpp"

#include <cstring>

namespace disco::server {

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kSubmit:
      return "SUBMIT";
    case FrameType::kPoll:
      return "POLL";
    case FrameType::kCancel:
      return "CANCEL";
    case FrameType::kSubscribe:
      return "SUBSCRIBE";
    case FrameType::kExplain:
      return "EXPLAIN";
    case FrameType::kStats:
      return "STATS";
    case FrameType::kSubmitted:
      return "SUBMITTED";
    case FrameType::kAnswer:
      return "ANSWER";
    case FrameType::kOk:
      return "OK";
    case FrameType::kExplainResult:
      return "EXPLAIN_RESULT";
    case FrameType::kStatsResult:
      return "STATS_RESULT";
    case FrameType::kBusy:
      return "BUSY";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kPartial:
      return "PARTIAL";
    case FrameType::kComplete:
      return "COMPLETE";
    case FrameType::kQueryFailed:
      return "QUERY_FAILED";
  }
  return "?";
}

bool is_push(FrameType type) {
  return type == FrameType::kPartial || type == FrameType::kComplete ||
         type == FrameType::kQueryFailed;
}

bool is_request(FrameType type) {
  switch (type) {
    case FrameType::kSubmit:
    case FrameType::kPoll:
    case FrameType::kCancel:
    case FrameType::kSubscribe:
    case FrameType::kExplain:
    case FrameType::kStats:
      return true;
    default:
      return false;
  }
}

std::string encode_frame(FrameType type, std::string_view payload) {
  const uint32_t len = static_cast<uint32_t>(1 + payload.size());
  std::string frame;
  frame.reserve(4 + len);
  // Little-endian length prefix, byte by byte — no host-order assumption.
  frame.push_back(static_cast<char>(len & 0xff));
  frame.push_back(static_cast<char>((len >> 8) & 0xff));
  frame.push_back(static_cast<char>((len >> 16) & 0xff));
  frame.push_back(static_cast<char>((len >> 24) & 0xff));
  frame.push_back(static_cast<char>(type));
  frame.append(payload);
  return frame;
}

FrameDecoder::Status FrameDecoder::next(Frame* out, std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = "decoder poisoned by earlier framing error";
    return Status::kBad;
  }
  const size_t avail = buffer_.size() - offset_;
  if (avail < 4) return Status::kNeedMore;

  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + offset_;
  const uint32_t len = static_cast<uint32_t>(p[0]) |
                       (static_cast<uint32_t>(p[1]) << 8) |
                       (static_cast<uint32_t>(p[2]) << 16) |
                       (static_cast<uint32_t>(p[3]) << 24);
  if (len == 0) {
    poisoned_ = true;
    if (error != nullptr) *error = "zero-length frame (missing type byte)";
    return Status::kBad;
  }
  if (len > 1 + kMaxPayload) {
    poisoned_ = true;
    if (error != nullptr) {
      *error = "frame length " + std::to_string(len) + " exceeds limit " +
               std::to_string(1 + kMaxPayload);
    }
    return Status::kBad;
  }
  if (avail < 4 + static_cast<size_t>(len)) return Status::kNeedMore;

  out->type = static_cast<FrameType>(p[4]);
  out->payload.assign(buffer_, offset_ + 5, len - 1);
  offset_ += 4 + static_cast<size_t>(len);

  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  return Status::kFrame;
}

}  // namespace disco::server
