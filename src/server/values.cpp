#include "server/values.hpp"

namespace disco::server {

json::Value value_to_json(const Value& value) {
  switch (value.kind()) {
    case ValueKind::Null:
      return json::Value();
    case ValueKind::Bool:
      return json::Value::boolean(value.as_bool());
    case ValueKind::Int:
      return json::Value::integer(value.as_int());
    case ValueKind::Double:
      return json::Value::real(value.as_double());
    case ValueKind::String:
      return json::Value::string(value.as_string());
    case ValueKind::Bag:
    case ValueKind::Set:
    case ValueKind::List: {
      std::vector<json::Value> items;
      items.reserve(value.items().size());
      for (const Value& item : value.items()) {
        items.push_back(value_to_json(item));
      }
      return json::Value::array(std::move(items));
    }
    case ValueKind::Struct: {
      std::vector<json::Value::Member> members;
      members.reserve(value.fields().size());
      for (const auto& [name, field] : value.fields()) {
        members.emplace_back(name, value_to_json(field));
      }
      return json::Value::object(std::move(members));
    }
  }
  return json::Value();
}

Value json_to_value(const json::Value& value) {
  switch (value.kind()) {
    case json::Value::Kind::Null:
      return Value::null();
    case json::Value::Kind::Bool:
      return Value::boolean(value.as_bool());
    case json::Value::Kind::Int:
      return Value::integer(value.as_int64());
    case json::Value::Kind::Double:
      return Value::real(value.as_double());
    case json::Value::Kind::String:
      return Value::string(value.as_string());
    case json::Value::Kind::Array: {
      std::vector<Value> items;
      items.reserve(value.items().size());
      for (const json::Value& item : value.items()) {
        items.push_back(json_to_value(item));
      }
      return Value::bag(std::move(items));
    }
    case json::Value::Kind::Object: {
      std::vector<std::pair<std::string, Value>> fields;
      fields.reserve(value.members().size());
      for (const auto& [name, member] : value.members()) {
        fields.emplace_back(name, json_to_value(member));
      }
      return Value::strct(std::move(fields));
    }
  }
  return Value::null();
}

}  // namespace disco::server
