// The mediator daemon's wire protocol (src/server/).
//
// Every message is one length-prefixed binary frame:
//
//   +-----------+---------+------------------+
//   | u32 len   | u8 type | payload (JSON)   |
//   +-----------+---------+------------------+
//    little-endian; len = 1 + payload bytes
//
// Request frames (client -> server): SUBMIT, POLL, CANCEL, SUBSCRIBE,
// EXPLAIN, STATS. Reply frames mirror them 1:1 in request order;
// *push* frames (PARTIAL, COMPLETE, QUERY_FAILED) may interleave at any
// frame boundary — clients discriminate by type, never by position.
// Malformed input (oversized length prefix, unknown type byte, invalid
// JSON) yields a typed ERROR frame, never a crash; only unrecoverable
// framing damage (an impossible length) closes the connection, since
// the byte stream cannot be resynchronized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace disco::server {

enum class FrameType : uint8_t {
  // client -> server
  kSubmit = 1,     ///< {"oql":s, "deadline_s"?:n, "subscribe"?:b}
  kPoll = 2,       ///< {"id":n}
  kCancel = 3,     ///< {"id":n, "release"?:b}
  kSubscribe = 4,  ///< {"id":n}
  kExplain = 5,    ///< {"oql":s}
  kStats = 6,      ///< {}

  // server -> client replies (one per request, in request order)
  kSubmitted = 17,      ///< {"id":n}
  kAnswer = 18,         ///< poll reply: {"id","state","complete","rows",...}
  kOk = 19,             ///< cancel/subscribe ack: {"id":n}
  kExplainResult = 20,  ///< {"text":s}
  kStatsResult = 21,    ///< {"server":o,"obs":o,"cache":o,"sched":o}
  kBusy = 22,           ///< backpressure shed: {"reason":s,"limit":n}
  kError = 23,          ///< {"code":s,"message":s,("id":n)}

  // server -> client pushes (subscription events; may interleave)
  kPartial = 32,      ///< {"id","complete":false,"rows","residuals"}
  kComplete = 33,     ///< {"id","complete":true,"rows","residuals":[]}
  kQueryFailed = 34,  ///< {"id","state"}
};

const char* to_string(FrameType type);
bool is_push(FrameType type);
/// True for the type bytes a client may legally send.
bool is_request(FrameType type);

/// Typed error codes carried in ERROR payloads ("code" member).
namespace error_code {
inline constexpr const char* kBadFrame = "bad_frame";
inline constexpr const char* kBadJson = "bad_json";
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kUnknownType = "unknown_type";
inline constexpr const char* kUnknownQuery = "unknown_query";
inline constexpr const char* kQueryError = "query_error";
inline constexpr const char* kInternal = "internal";
}  // namespace error_code

/// Hard cap on one frame's payload (8 MiB of OQL or rows is already far
/// beyond anything the protocol ships; a 4 GiB length prefix must not
/// become an allocation).
inline constexpr uint32_t kMaxPayload = 8u << 20;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Serializes one frame (length prefix + type byte + payload).
std::string encode_frame(FrameType type, std::string_view payload);

/// Incremental frame extractor over a raw byte stream. feed() bytes as
/// they arrive, then drain next() until NeedMore.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     ///< *out holds the next frame
    kNeedMore,  ///< no complete frame buffered yet
    kBad,       ///< framing damage; *error says why. Unrecoverable: the
                ///< stream has no resync point, close the connection.
  };

  void feed(const char* data, size_t size) { buffer_.append(data, size); }
  void feed(std::string_view bytes) { buffer_.append(bytes); }

  Status next(Frame* out, std::string* error);

  size_t buffered() const { return buffer_.size() - offset_; }

 private:
  std::string buffer_;
  size_t offset_ = 0;  ///< consumed prefix (compacted lazily)
  bool poisoned_ = false;
};

}  // namespace disco::server
