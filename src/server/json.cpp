#include "server/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/trace.hpp"  // json_escape

namespace disco::server::json {

// -------------------------------------------------------------------- Value --

Value Value::boolean(bool v) {
  Value out;
  out.kind_ = Kind::Bool;
  out.bool_ = v;
  return out;
}

Value Value::integer(int64_t v) {
  Value out;
  out.kind_ = Kind::Int;
  out.int_ = v;
  return out;
}

Value Value::unsigned_integer(uint64_t v) {
  // Session ids are minted from 1 upward; they always fit int64 in
  // practice, but keep the top bit safe by widening to double there.
  if (v <= static_cast<uint64_t>(INT64_MAX)) {
    return integer(static_cast<int64_t>(v));
  }
  return real(static_cast<double>(v));
}

Value Value::real(double v) {
  Value out;
  out.kind_ = Kind::Double;
  out.double_ = v;
  return out;
}

Value Value::string(std::string v) {
  Value out;
  out.kind_ = Kind::String;
  out.string_ = std::move(v);
  return out;
}

Value Value::array(std::vector<Value> items) {
  Value out;
  out.kind_ = Kind::Array;
  out.items_ = std::move(items);
  return out;
}

Value Value::object(std::vector<Member> members) {
  Value out;
  out.kind_ = Kind::Object;
  out.members_ = std::move(members);
  return out;
}

namespace {

[[noreturn]] void kind_mismatch(const char* wanted) {
  throw JsonError(std::string("JSON value is not ") + wanted);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) kind_mismatch("a boolean");
  return bool_;
}

int64_t Value::as_int64() const {
  if (kind_ == Kind::Int) return int_;
  if (kind_ == Kind::Double && double_ == std::floor(double_) &&
      double_ >= static_cast<double>(INT64_MIN) &&
      double_ <= static_cast<double>(INT64_MAX)) {
    return static_cast<int64_t>(double_);
  }
  kind_mismatch("an integer");
}

uint64_t Value::as_uint64() const {
  if (kind_ == Kind::Int && int_ >= 0) return static_cast<uint64_t>(int_);
  if (kind_ == Kind::Double && double_ >= 0 &&
      double_ == std::floor(double_) && double_ <= 1.8e19) {
    return static_cast<uint64_t>(double_);
  }
  kind_mismatch("a non-negative integer");
}

double Value::as_double() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ == Kind::Double) return double_;
  kind_mismatch("a number");
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) kind_mismatch("a string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  if (kind_ != Kind::Array) kind_mismatch("an array");
  return items_;
}

const std::vector<Value::Member>& Value::members() const {
  if (kind_ != Kind::Object) kind_mismatch("an object");
  return members_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* found = find(key);
  if (found == nullptr) {
    throw JsonError("missing JSON member '" + std::string(key) + "'");
  }
  return *found;
}

std::string Value::dump() const {
  switch (kind_) {
    case Kind::Null:
      return "null";
    case Kind::Bool:
      return bool_ ? "true" : "false";
    case Kind::Int:
      return std::to_string(int_);
    case Kind::Double: {
      if (!std::isfinite(double_)) return double_ > 0 ? "1e308" : "-1e308";
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.17g", double_);
      return buffer;
    }
    case Kind::String:
      return '"' + obs::json_escape(string_) + '"';
    case Kind::Array: {
      std::string out = "[";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        out += items_[i].dump();
      }
      return out + ']';
    }
    case Kind::Object: {
      std::string out = "{";
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        out += '"' + obs::json_escape(members_[i].first) + "\":";
        out += members_[i].second.dump();
      }
      return out + '}';
    }
  }
  return "null";
}

// ------------------------------------------------------------------- parser --

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value run() {
    Value out = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return out;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("JSON parse error at byte " + std::to_string(pos_) +
                    ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value value() {
    if (depth_ > kMaxDepth) fail("document nests too deeply");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Value::string(string_body());
      case 't':
        if (consume_literal("true")) return Value::boolean(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value::boolean(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value{};
        fail("bad literal");
      default:
        return number();
    }
  }

  Value object() {
    ++depth_;
    expect('{');
    std::vector<Value::Member> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return Value::object(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("object keys must be strings");
      std::string key = string_body();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    --depth_;
    return Value::object(std::move(members));
  }

  Value array() {
    ++depth_;
    expect('[');
    std::vector<Value> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return Value::array(std::move(items));
    }
    for (;;) {
      items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    --depth_;
    return Value::array(std::move(items));
  }

  void append_utf8(std::string& out, uint32_t code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  uint32_t hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return out;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          uint32_t code_point = hex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // Surrogate pair.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const uint32_t low = hex4();
              if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
              code_point = 0x10000 + ((code_point - 0xD800) << 10) +
                           (low - 0xDC00);
            } else {
              fail("lone high surrogate");
            }
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, code_point);
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Value number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      const size_t frac = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac) fail("bad number: no digits after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const size_t exp = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp) fail("bad number: no digits in exponent");
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Value::integer(parsed);
      }
      // Out of int64 range: fall through to double.
    }
    const double parsed = std::strtod(token.c_str(), nullptr);
    // Overflow (e.g. "1e999") yields inf: a non-finite Double would
    // corrupt the mediator's total order, and dump() could not round-trip
    // it anyway (JSON has no inf/nan literals). Strict parse rejects it.
    if (!std::isfinite(parsed)) fail("number out of range: " + token);
    return Value::real(parsed);
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).run(); }

}  // namespace disco::server::json
