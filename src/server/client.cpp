#include "server/client.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace disco::server {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int to_poll_ms(double seconds) {
  if (!std::isfinite(seconds)) return -1;
  if (seconds <= 0) return 0;
  const double ms = seconds * 1000.0;
  return ms > 2e9 ? 2000000000 : static_cast<int>(ms) + 1;
}

}  // namespace

Client::Client(const std::string& host, uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw ExecutionError("client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw ExecutionError("client: bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw ExecutionError("client: connect(" + host + ":" +
                         std::to_string(port) +
                         ") failed: " + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_raw(const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t sent = ::send(fd_, bytes.data() + off, bytes.size() - off,
                                MSG_NOSIGNAL);
    if (sent > 0) {
      off += static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    throw ExecutionError("client: send failed: " +
                         std::string(std::strerror(errno)));
  }
}

std::optional<Frame> Client::read_frame(double timeout_s) {
  const double deadline = now_s() + timeout_s;
  Frame frame;
  std::string error;
  for (;;) {
    const FrameDecoder::Status status = decoder_.next(&frame, &error);
    if (status == FrameDecoder::Status::kFrame) return frame;
    if (status == FrameDecoder::Status::kBad) {
      throw ExecutionError("client: framing error from server: " + error);
    }
    const double remaining =
        std::isfinite(timeout_s) ? deadline - now_s() : timeout_s;
    if (std::isfinite(timeout_s) && remaining <= 0) return std::nullopt;

    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, to_poll_ms(remaining));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw ExecutionError("client: poll failed");
    }
    if (ready == 0) return std::nullopt;

    char buf[65536];
    const ssize_t got = ::recv(fd_, buf, sizeof buf, 0);
    if (got > 0) {
      decoder_.feed(buf, static_cast<size_t>(got));
      continue;
    }
    if (got == 0) throw ExecutionError("client: server closed the connection");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw ExecutionError("client: recv failed: " +
                         std::string(std::strerror(errno)));
  }
}

std::optional<Frame> Client::recv_frame(double timeout_s) {
  return read_frame(timeout_s);
}

Response Client::call(FrameType type, const json::Value& payload) {
  send_raw(encode_frame(type, payload.dump()));
  for (;;) {
    std::optional<Frame> frame =
        read_frame(std::numeric_limits<double>::infinity());
    if (!frame.has_value()) {
      throw ExecutionError("client: no reply");  // unreachable: infinite wait
    }
    Response response{frame->type, json::parse(frame->payload)};
    if (is_push(frame->type)) {
      events_.push_back(std::move(response));
      continue;
    }
    return response;
  }
}

Response Client::submit(const std::string& oql, double deadline_s,
                        bool subscribe) {
  std::vector<json::Value::Member> members{
      {"oql", json::Value::string(oql)}};
  if (std::isfinite(deadline_s)) {
    members.emplace_back("deadline_s", json::Value::real(deadline_s));
  }
  if (subscribe) {
    members.emplace_back("subscribe", json::Value::boolean(true));
  }
  return call(FrameType::kSubmit, json::Value::object(std::move(members)));
}

uint64_t Client::submit_id(const std::string& oql, double deadline_s,
                           bool subscribe) {
  const Response r = submit(oql, deadline_s, subscribe);
  if (r.type != FrameType::kSubmitted) {
    const json::Value* message = r.payload.find("message");
    const json::Value* reason = r.payload.find("reason");
    throw ExecutionError(
        "client: submit refused (" + std::string(to_string(r.type)) + "): " +
        (message != nullptr   ? message->as_string()
         : reason != nullptr ? reason->as_string()
                             : std::string("?")));
  }
  return r.payload.at("id").as_uint64();
}

Response Client::poll(uint64_t id) {
  return call(FrameType::kPoll,
              json::Value::object(
                  {{"id", json::Value::unsigned_integer(id)}}));
}

Response Client::cancel(uint64_t id, bool release_only) {
  std::vector<json::Value::Member> members{
      {"id", json::Value::unsigned_integer(id)}};
  if (release_only) {
    members.emplace_back("release", json::Value::boolean(true));
  }
  return call(FrameType::kCancel, json::Value::object(std::move(members)));
}

Response Client::subscribe(uint64_t id) {
  return call(FrameType::kSubscribe,
              json::Value::object(
                  {{"id", json::Value::unsigned_integer(id)}}));
}

Response Client::explain(const std::string& oql) {
  return call(FrameType::kExplain,
              json::Value::object({{"oql", json::Value::string(oql)}}));
}

Response Client::stats() {
  return call(FrameType::kStats, json::Value::object({}));
}

std::optional<Response> Client::next_event(double timeout_s) {
  if (!events_.empty()) {
    Response r = std::move(events_.front());
    events_.erase(events_.begin());
    return r;
  }
  const double deadline = now_s() + timeout_s;
  for (;;) {
    const double remaining =
        std::isfinite(timeout_s) ? deadline - now_s() : timeout_s;
    if (std::isfinite(timeout_s) && remaining <= 0) return std::nullopt;
    std::optional<Frame> frame = read_frame(remaining);
    if (!frame.has_value()) return std::nullopt;
    Response response{frame->type, json::parse(frame->payload)};
    // A reply frame here means the caller interleaved call() wrongly;
    // surface rather than silently dropping.
    if (!is_push(frame->type)) {
      throw ExecutionError("client: unexpected reply frame " +
                           std::string(to_string(frame->type)) +
                           " while waiting for events");
    }
    return response;
  }
}

std::optional<Response> Client::wait_event(uint64_t id,
                                           std::vector<FrameType> types,
                                           double timeout_s) {
  const auto matches = [&](const Response& r) {
    const json::Value* rid = r.payload.find("id");
    if (rid == nullptr || rid->as_uint64() != id) return false;
    for (FrameType t : types) {
      if (r.type == t) return true;
    }
    return false;
  };
  // Scan the buffer first.
  for (size_t i = 0; i < events_.size(); ++i) {
    if (matches(events_[i])) {
      Response r = std::move(events_[i]);
      events_.erase(events_.begin() + static_cast<ptrdiff_t>(i));
      return r;
    }
  }
  const double deadline = now_s() + timeout_s;
  for (;;) {
    const double remaining =
        std::isfinite(timeout_s) ? deadline - now_s() : timeout_s;
    if (std::isfinite(timeout_s) && remaining <= 0) return std::nullopt;
    std::optional<Frame> frame = read_frame(remaining);
    if (!frame.has_value()) return std::nullopt;
    Response response{frame->type, json::parse(frame->payload)};
    if (!is_push(frame->type)) {
      throw ExecutionError("client: unexpected reply frame " +
                           std::string(to_string(frame->type)) +
                           " while waiting for events");
    }
    if (matches(response)) return response;
    events_.push_back(std::move(response));
  }
}

}  // namespace disco::server
