// disco_serverd — the mediator daemon.
//
//   build/src/server/disco_serverd [--port N] [--host A] [--sources N]
//                                  [--rows N] [--workers N] [--exec N]
//
// Stands up the paper's running person federation (N in-memory MiniSQL
// sources behind one wrapper), wraps the mediator in a Server and
// serves the frame protocol until SIGINT/SIGTERM. The daemon enables
// the full production stack: wall-clock executor, health tracking with
// circuit breakers, result cache, per-source admission control and a
// multi-worker session layer — the same configuration bench_server
// measures.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "core/disco.hpp"
#include "server/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

uint64_t arg_u64(int argc, char** argv, const char* name, uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return static_cast<uint64_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

const char* arg_str(int argc, char** argv, const char* name,
                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;

  const uint16_t port =
      static_cast<uint16_t>(arg_u64(argc, argv, "--port", 7117));
  const std::string host = arg_str(argc, argv, "--host", "127.0.0.1");
  const size_t n_sources = arg_u64(argc, argv, "--sources", 4);
  const size_t rows = arg_u64(argc, argv, "--rows", 64);
  const size_t session_workers = arg_u64(argc, argv, "--workers", 4);
  const size_t exec_workers = arg_u64(argc, argv, "--exec", 4);

  Mediator::Options options;
  options.exec.workers = exec_workers;
  options.exec.latency_scale = 0.01;
  options.exec.call_deadline_s = 5.0;
  options.health.enabled = true;
  options.health.failure_threshold = 2;
  options.health.open_cooldown_s = 5.0;
  options.health.probe_interval_s = 2.0;
  options.session.workers = session_workers;
  options.session.retry_interval_s = 0.05;
  options.cache.enabled = true;
  options.sched.enabled = true;
  options.enable_plan_cache = true;
  Mediator mediator(options);

  // The paper's person schema scaled to --sources repositories.
  mediator.execute_odl(R"(
    interface Person (extent person) {
      attribute Long id;
      attribute String name;
      attribute Short salary; };
  )");
  std::vector<std::unique_ptr<memdb::Database>> databases;
  auto wrapper = std::make_shared<wrapper::MemDbWrapper>();
  mediator.register_wrapper("w0", wrapper);
  for (size_t s = 0; s < n_sources; ++s) {
    auto db = std::make_unique<memdb::Database>("db" + std::to_string(s));
    const std::string extent = "person" + std::to_string(s);
    auto& table =
        db->create_table(extent, {{"id", memdb::ColumnType::Int},
                                  {"name", memdb::ColumnType::Text},
                                  {"salary", memdb::ColumnType::Int}});
    for (size_t r = 0; r < rows; ++r) {
      table.insert({Value::integer(static_cast<int64_t>(r)),
                    Value::string("p" + std::to_string(s) + "_" +
                                  std::to_string(r)),
                    Value::integer(static_cast<int64_t>((r * 37) % 1000))});
    }
    const std::string repo = "r" + std::to_string(s);
    wrapper->attach_database(repo, db.get());
    databases.push_back(std::move(db));
    mediator.register_repository(
        catalog::Repository{repo, "host" + std::to_string(s), "db",
                            "10.0.0." + std::to_string(s)},
        net::LatencyModel{0.010, 0.0001, 0});
    mediator.execute_odl("extent " + extent +
                         " of Person wrapper w0 repository " + repo + ";");
  }

  server::ServerOptions sopts;
  sopts.host = host;
  sopts.port = port;
  server::Server srv(mediator, sopts);
  srv.start();
  std::cout << "disco_serverd listening on " << srv.host() << ":"
            << srv.port() << " (" << n_sources << " sources, "
            << session_workers << " session workers)" << std::endl;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "disco_serverd: shutting down" << std::endl;
  srv.stop();
  return 0;
}
