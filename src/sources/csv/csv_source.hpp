// CSV file data source.
//
// The weakest kind of server in the paper's spectrum ("the DISCO model can
// be applied to a variety of information servers, such as WAIS servers,
// file systems, ...", §2.2): it can only hand back all of its rows — its
// wrapper therefore advertises the {get}-only capability grammar, making
// it the canonical can't-push-anything source for the pushdown
// experiments.
//
// Format: first line is the header; fields are comma-separated; a field
// is parsed as int, then double, then bool (true/false), then string;
// double quotes delimit strings containing commas ("" escapes a quote).
#pragma once

#include <string>
#include <vector>

#include "value/value.hpp"

namespace disco::csv {

struct CsvTable {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  /// All rows as a bag of structs keyed by the header names.
  Value as_row_bag() const;
};

/// Parses CSV text. Throws ExecutionError on ragged rows or an empty
/// header.
CsvTable parse_csv(const std::string& name, const std::string& text);

/// Reads and parses a CSV file. Throws ExecutionError when unreadable.
CsvTable load_csv_file(const std::string& name, const std::string& path);

}  // namespace disco::csv
