#include "sources/csv/csv_source.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace disco::csv {

namespace {

/// One raw record: field texts plus whether each field was quoted
/// (quoted fields are always strings; unquoted ones go through type
/// inference).
struct RawRecord {
  std::vector<std::string> fields;
  std::vector<bool> quoted;
};

/// Splits the raw text into records with RFC-4180 quote awareness. A
/// quoted field may contain embedded newlines (CRLF or LF), commas and
/// `""` escapes, so record boundaries cannot be found line-by-line —
/// this scans the text once, tracking quote state. Outside quotes, a
/// record ends at `\n` (a preceding `\r` belongs to the terminator and
/// is stripped); a `"` that appears mid-field in unquoted context is
/// kept as a literal character rather than silently opening quote mode.
std::vector<RawRecord> split_records(const std::string& text) {
  std::vector<RawRecord> records;
  RawRecord record;
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  bool at_field_start = true;

  auto end_field = [&]() {
    record.fields.push_back(std::move(current));
    record.quoted.push_back(was_quoted);
    current.clear();
    was_quoted = false;
    at_field_start = true;
  };
  auto end_record = [&]() {
    end_field();
    // Blank lines between records are skipped, but a lone quoted empty
    // field ("" on its own line) is a real one-field record.
    bool blank = record.fields.size() == 1 && record.fields[0].empty() &&
                 !record.quoted[0];
    if (!blank) records.push_back(std::move(record));
    record = RawRecord{};
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;  // closed; any tail chars append unquoted
        }
      } else {
        current += c;  // newlines and commas are literal inside quotes
      }
    } else if (c == '"' && at_field_start) {
      in_quotes = true;
      was_quoted = true;
      at_field_start = false;
    } else if (c == ',') {
      end_field();
    } else if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') {
      ++i;  // \r\n terminator: the \r is not part of the field
      end_record();
    } else if (c == '\n') {
      end_record();
    } else {
      current += c;  // includes literal '"' mid-field and lone '\r'
      at_field_start = false;
    }
  }
  if (in_quotes) {
    throw ExecutionError("CSV: unterminated quoted field: " + current);
  }
  // Flush a final record with no trailing newline.
  if (!current.empty() || was_quoted || !record.fields.empty()) {
    end_record();
  }
  return records;
}

Value infer_value(const std::string& field, bool was_quoted) {
  if (was_quoted) return Value::string(field);
  std::string text = trim(field);
  if (text.empty()) return Value::null();
  {
    int64_t v = 0;
    auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec == std::errc() && p == text.data() + text.size()) {
      return Value::integer(v);
    }
  }
  {
    double v = 0;
    auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec == std::errc() && p == text.data() + text.size() &&
        std::isfinite(v)) {
      // from_chars accepts "nan"/"inf"/"-inf" spellings; a non-finite
      // Double would corrupt the federation's total order and obs JSON,
      // so those stay String (the finite check rejects them).
      return Value::real(v);
    }
  }
  if (iequals(text, "true")) return Value::boolean(true);
  if (iequals(text, "false")) return Value::boolean(false);
  return Value::string(text);
}

}  // namespace

Value CsvTable::as_row_bag() const {
  return make_row_bag(columns, rows);
}

CsvTable parse_csv(const std::string& name, const std::string& text) {
  CsvTable table;
  table.name = name;
  std::vector<RawRecord> records = split_records(text);
  if (records.empty()) {
    throw ExecutionError("CSV '" + name + "': missing header line");
  }
  for (std::string& field : records.front().fields) {
    std::string column = trim(field);
    if (column.empty()) {
      throw ExecutionError("CSV '" + name + "': empty header field");
    }
    table.columns.push_back(std::move(column));
  }
  for (size_t r = 1; r < records.size(); ++r) {
    RawRecord& record = records[r];
    if (record.fields.size() != table.columns.size()) {
      throw ExecutionError("CSV '" + name + "': row with " +
                           std::to_string(record.fields.size()) +
                           " fields, expected " +
                           std::to_string(table.columns.size()));
    }
    std::vector<Value> row;
    row.reserve(record.fields.size());
    for (size_t i = 0; i < record.fields.size(); ++i) {
      row.push_back(infer_value(record.fields[i], record.quoted[i]));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

CsvTable load_csv_file(const std::string& name, const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw ExecutionError("CSV: cannot open file '" + path + "'");
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return parse_csv(name, buffer.str());
}

}  // namespace disco::csv
