#include "sources/csv/csv_source.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace disco::csv {

namespace {

/// Splits one CSV record honouring quoted fields.
std::vector<std::string> split_record(const std::string& line,
                                      std::vector<bool>& quoted) {
  std::vector<std::string> fields;
  quoted.clear();
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      was_quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      quoted.push_back(was_quoted);
      current.clear();
      was_quoted = false;
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    throw ExecutionError("CSV: unterminated quoted field: " + line);
  }
  fields.push_back(std::move(current));
  quoted.push_back(was_quoted);
  return fields;
}

Value infer_value(const std::string& field, bool was_quoted) {
  if (was_quoted) return Value::string(field);
  std::string text = trim(field);
  if (text.empty()) return Value::null();
  {
    int64_t v = 0;
    auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec == std::errc() && p == text.data() + text.size()) {
      return Value::integer(v);
    }
  }
  {
    double v = 0;
    auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec == std::errc() && p == text.data() + text.size()) {
      return Value::real(v);
    }
  }
  if (iequals(text, "true")) return Value::boolean(true);
  if (iequals(text, "false")) return Value::boolean(false);
  return Value::string(text);
}

}  // namespace

Value CsvTable::as_row_bag() const {
  return make_row_bag(columns, rows);
}

CsvTable parse_csv(const std::string& name, const std::string& text) {
  CsvTable table;
  table.name = name;
  std::istringstream stream(text);
  std::string line;
  bool header_done = false;
  std::vector<bool> quoted;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && !header_done) continue;
    if (!header_done) {
      for (std::string& field : split_record(line, quoted)) {
        std::string column = trim(field);
        if (column.empty()) {
          throw ExecutionError("CSV '" + name + "': empty header field");
        }
        table.columns.push_back(std::move(column));
      }
      header_done = true;
      continue;
    }
    if (line.empty()) continue;
    std::vector<std::string> fields = split_record(line, quoted);
    if (fields.size() != table.columns.size()) {
      throw ExecutionError("CSV '" + name + "': row with " +
                           std::to_string(fields.size()) +
                           " fields, expected " +
                           std::to_string(table.columns.size()));
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      row.push_back(infer_value(fields[i], quoted[i]));
    }
    table.rows.push_back(std::move(row));
  }
  if (!header_done) {
    throw ExecutionError("CSV '" + name + "': missing header line");
  }
  return table;
}

CsvTable load_csv_file(const std::string& name, const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw ExecutionError("CSV: cannot open file '" + path + "'");
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return parse_csv(name, buffer.str());
}

}  // namespace disco::csv
