#include "sources/memdb/index.hpp"

#include "common/error.hpp"

namespace disco::memdb {

OrderedIndex::OrderedIndex(std::string name, size_t column)
    : name_(std::move(name)),
      column_(column),
      head_(std::make_unique<Node>()),
      // Structure must be reproducible: seed from the index name so two
      // databases built the same way probe in the same number of steps.
      rng_(fnv1a(name_.data(), name_.size()) | 1) {
  internal_check(!name_.empty(), "index needs a name");
}

OrderedIndex::~OrderedIndex() {
  Node* node = head_->next[0];
  while (node != nullptr) {
    Node* next = node->next[0];
    delete node;
    node = next;
  }
}

int OrderedIndex::entry_compare(const Value& a_key, size_t a_row,
                                const Value& b_key, size_t b_row) {
  int c = Value::compare(a_key, b_key);
  if (c != 0) return c;
  if (a_row != b_row) return a_row < b_row ? -1 : 1;
  return 0;
}

int OrderedIndex::random_level() {
  // Geometric with p = 1/4: expected forward pointers per entry ~1.33.
  int level = 1;
  while (level < kMaxLevel && (rng_.next() & 3) == 0) ++level;
  return level;
}

void OrderedIndex::insert(const Value& key, size_t row) {
  std::array<Node*, kMaxLevel> update{};
  Node* node = head_.get();
  for (int l = level_ - 1; l >= 0; --l) {
    while (node->next[l] != nullptr &&
           entry_compare(node->next[l]->key, node->next[l]->row, key, row) <
               0) {
      node = node->next[l];
    }
    update[static_cast<size_t>(l)] = node;
  }

  int new_level = random_level();
  if (new_level > level_) {
    for (int l = level_; l < new_level; ++l) {
      update[static_cast<size_t>(l)] = head_.get();
    }
    level_ = new_level;
  }

  Node* fresh = new Node{key, row, {}};
  for (int l = 0; l < new_level; ++l) {
    Node* prev = update[static_cast<size_t>(l)];
    fresh->next[static_cast<size_t>(l)] = prev->next[static_cast<size_t>(l)];
    prev->next[static_cast<size_t>(l)] = fresh;
  }
  ++size_;
}

bool OrderedIndex::erase(const Value& key, size_t row) {
  std::array<Node*, kMaxLevel> update{};
  Node* node = head_.get();
  for (int l = level_ - 1; l >= 0; --l) {
    while (node->next[l] != nullptr &&
           entry_compare(node->next[l]->key, node->next[l]->row, key, row) <
               0) {
      node = node->next[l];
    }
    update[static_cast<size_t>(l)] = node;
  }
  Node* target = node->next[0];
  if (target == nullptr ||
      entry_compare(target->key, target->row, key, row) != 0) {
    return false;
  }
  for (int l = 0; l < level_; ++l) {
    Node* prev = update[static_cast<size_t>(l)];
    if (prev->next[static_cast<size_t>(l)] != target) continue;
    prev->next[static_cast<size_t>(l)] =
        target->next[static_cast<size_t>(l)];
  }
  delete target;
  while (level_ > 1 && head_->next[static_cast<size_t>(level_ - 1)] ==
                           nullptr) {
    --level_;
  }
  --size_;
  return true;
}

void OrderedIndex::probe(const Value& key, std::vector<size_t>* out) const {
  const Node* node = head_.get();
  for (int l = level_ - 1; l >= 0; --l) {
    while (node->next[l] != nullptr &&
           Value::compare(node->next[l]->key, key) < 0) {
      node = node->next[l];
    }
  }
  for (const Node* hit = node->next[0];
       hit != nullptr && Value::compare(hit->key, key) == 0;
       hit = hit->next[0]) {
    out->push_back(hit->row);
  }
}

void OrderedIndex::range(const Bound& lo, const Bound& hi,
                         std::vector<size_t>* out) const {
  const Node* node = head_.get();
  if (lo.present) {
    for (int l = level_ - 1; l >= 0; --l) {
      while (node->next[l] != nullptr) {
        int c = Value::compare(node->next[l]->key, lo.value);
        if (c < 0 || (c == 0 && !lo.inclusive)) {
          node = node->next[l];
        } else {
          break;
        }
      }
    }
  }
  for (const Node* hit = node->next[0]; hit != nullptr; hit = hit->next[0]) {
    if (hi.present) {
      int c = Value::compare(hit->key, hi.value);
      if (c > 0 || (c == 0 && !hi.inclusive)) break;
    }
    out->push_back(hit->row);
  }
}

}  // namespace disco::memdb
