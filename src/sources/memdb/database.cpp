#include "sources/memdb/database.hpp"

#include "common/error.hpp"

namespace disco::memdb {

Table& Database::create_table(std::string table, std::vector<Column> columns) {
  if (tables_.contains(table)) {
    throw CatalogError("table '" + table + "' already exists in database '" +
                       name_ + "'");
  }
  order_.push_back(table);
  auto [it, inserted] =
      tables_.emplace(table, Table(table, std::move(columns)));
  return it->second;
}

bool Database::has_table(const std::string& table) const {
  return tables_.contains(table);
}

Table& Database::table(const std::string& table) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    throw CatalogError("no table '" + table + "' in database '" + name_ +
                       "'");
  }
  return it->second;
}

const Table& Database::table(const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    throw CatalogError("no table '" + table + "' in database '" + name_ +
                       "'");
  }
  return it->second;
}

std::vector<std::string> Database::table_names() const { return order_; }

}  // namespace disco::memdb
