// A memdb database: a named collection of tables. One Database instance
// models one *repository* in the paper's sense (§2.1: "Repositories
// typically contain several data sources. Each data source in a
// repository is associated with an extent").
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sources/memdb/table.hpp"

namespace disco::memdb {

class Database {
 public:
  explicit Database(std::string name = "db") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Creates a table; throws CatalogError on duplicates.
  Table& create_table(std::string table, std::vector<Column> columns);

  bool has_table(const std::string& table) const;
  /// Throws CatalogError when absent.
  Table& table(const std::string& table);
  const Table& table(const std::string& table) const;

  std::vector<std::string> table_names() const;

 private:
  std::string name_;
  std::unordered_map<std::string, Table> tables_;
  std::vector<std::string> order_;
};

}  // namespace disco::memdb
