// Ordered secondary index for memdb tables: a skiplist keyed on Value
// with the engine's own comparison semantics (Value::compare — Int and
// Double unify on the number line, null == null, strings lexicographic).
// Using the exact comparator the predicate evaluator uses is what makes
// an index-driven answer provably equal to a scan-driven one: a probe
// for 1 finds rows storing 1.0, a probe for null finds null rows,
// exactly as `WHERE c = 1` / `WHERE c = null` would.
//
// Entries are (key, row id) pairs ordered by key then row id, so equal
// keys form contiguous runs and erase(key, row) is exact. Row ids are
// positions in the table's row vector; the table keeps them dense on
// delete by swapping the last row into the hole and re-pointing its
// index entries (Table::remove_row).
//
// The skiplist's level coins come from a SplitMix64 seeded per index —
// structure (and therefore probe cost) is reproducible run to run,
// which the virtual-time benches rely on.
//
// Concurrency: none here. The owning Table serializes writers and the
// Engine takes the table's shared lock around whole queries; the index
// is plain single-writer data behind that gate.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "value/value.hpp"

namespace disco::memdb {

class OrderedIndex {
 public:
  /// `column` is the indexed column's position in the table layout.
  OrderedIndex(std::string name, size_t column);
  ~OrderedIndex();

  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;

  const std::string& name() const { return name_; }
  size_t column() const { return column_; }
  size_t size() const { return size_; }

  void insert(const Value& key, size_t row);
  /// Removes the exact (key, row) entry; returns false when absent.
  bool erase(const Value& key, size_t row);
  /// All row ids whose key compares equal to `key`, appended to `out`
  /// in row-id order (equal-key runs are stored sorted by row id).
  void probe(const Value& key, std::vector<size_t>* out) const;

  /// One side of a range scan; absent means unbounded.
  struct Bound {
    bool present = false;
    bool inclusive = true;
    Value value;

    static Bound open() { return Bound{}; }
    static Bound at(Value v, bool inclusive) {
      return Bound{true, inclusive, std::move(v)};
    }
  };
  /// Row ids with lo <= key <= hi (respecting inclusivity), appended to
  /// `out` in key order — callers sort when they need row order.
  void range(const Bound& lo, const Bound& hi, std::vector<size_t>* out) const;

 private:
  static constexpr int kMaxLevel = 16;

  struct Node {
    Value key;
    size_t row = 0;
    std::array<Node*, kMaxLevel> next{};
  };

  /// -1 / 0 / +1 of (a_key, a_row) vs (b_key, b_row).
  static int entry_compare(const Value& a_key, size_t a_row,
                           const Value& b_key, size_t b_row);
  int random_level();

  std::string name_;
  size_t column_;
  size_t size_ = 0;
  int level_ = 1;  ///< highest level currently in use
  std::unique_ptr<Node> head_;
  SplitMix64 rng_;
};

}  // namespace disco::memdb
