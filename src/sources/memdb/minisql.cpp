#include "sources/memdb/minisql.hpp"

#include <charconv>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "oql/lexer.hpp"

namespace disco::memdb {

// MiniSQL shares DISCO's lexical structure, so the generic tokenizer from
// oql/lexer.hpp is reused; everything above the token level is distinct.
using oql::Token;
using oql::TokenKind;

const char* to_string(CmpOp op) {
  switch (op) {
    case CmpOp::Eq:
      return "=";
    case CmpOp::Ne:
      return "<>";
    case CmpOp::Lt:
      return "<";
    case CmpOp::Le:
      return "<=";
    case CmpOp::Gt:
      return ">";
    case CmpOp::Ge:
      return ">=";
  }
  return "?";
}

std::string Operand::to_sql() const {
  if (kind == Kind::Column) return column.to_sql();
  // MiniSQL literal syntax is compatible with the OQL literal printer for
  // scalars (memdb stores scalars only).
  return literal.to_oql();
}

PredPtr Pred::cmp(CmpOp op, Operand lhs, Operand rhs) {
  auto p = std::make_shared<Pred>();
  p->kind = Kind::Cmp;
  p->op = op;
  p->lhs = std::move(lhs);
  p->rhs = std::move(rhs);
  return p;
}

PredPtr Pred::conj(PredPtr left, PredPtr right) {
  if (left == nullptr) return right;
  if (right == nullptr) return left;
  auto p = std::make_shared<Pred>();
  p->kind = Kind::And;
  p->left = std::move(left);
  p->right = std::move(right);
  return p;
}

PredPtr Pred::disj(PredPtr left, PredPtr right) {
  internal_check(left != nullptr && right != nullptr, "disj needs operands");
  auto p = std::make_shared<Pred>();
  p->kind = Kind::Or;
  p->left = std::move(left);
  p->right = std::move(right);
  return p;
}

PredPtr Pred::negate(PredPtr operand) {
  internal_check(operand != nullptr, "negate needs an operand");
  auto p = std::make_shared<Pred>();
  p->kind = Kind::Not;
  p->left = std::move(operand);
  return p;
}

std::string Pred::to_sql() const {
  switch (kind) {
    case Kind::Cmp:
      return lhs.to_sql() + " " + to_string(op) + " " + rhs.to_sql();
    case Kind::And:
      return "(" + left->to_sql() + " AND " + right->to_sql() + ")";
    case Kind::Or:
      return "(" + left->to_sql() + " OR " + right->to_sql() + ")";
    case Kind::Not:
      return "NOT (" + left->to_sql() + ")";
  }
  return "?";
}

std::string Query::to_sql() const {
  std::string out = "SELECT ";
  if (star) {
    out += "*";
  } else {
    std::vector<std::string> parts;
    for (const SelectItem& item : items) {
      std::string part = item.column.to_sql();
      if (!item.alias.empty() && item.alias != item.column.column) {
        part += " AS " + item.alias;
      }
      parts.push_back(std::move(part));
    }
    out += join(parts, ", ");
  }
  out += " FROM ";
  std::vector<std::string> tables_text;
  for (const TableRef& ref : tables) {
    std::string part = ref.table;
    if (!ref.alias.empty() && ref.alias != ref.table) {
      part += " " + ref.alias;
    }
    tables_text.push_back(std::move(part));
  }
  out += join(tables_text, ", ");
  if (where != nullptr) {
    out += " WHERE " + where->to_sql();
  }
  return out;
}

namespace {

bool is_kw(const Token& token, std::string_view keyword) {
  return token.kind == TokenKind::Ident && iequals(token.text, keyword);
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Query run() {
    Query query = select_query();
    finish();
    return query;
  }

  Statement run_statement() {
    Statement statement;
    if (is_kw(peek(), "create")) {
      statement.create_index = create_index();
    } else {
      statement.query = select_query();
    }
    finish();
    return statement;
  }

 private:
  void finish() {
    if (peek().kind == TokenKind::Semicolon) advance();
    if (peek().kind != TokenKind::End) {
      fail("unexpected trailing input");
    }
  }

  CreateIndexStmt create_index() {
    if (!match_kw("create")) fail("expected CREATE");
    if (!match_kw("index")) fail("expected INDEX after CREATE");
    CreateIndexStmt stmt;
    stmt.index = expect_ident("index name").text;
    if (!match_kw("on")) fail("expected ON");
    stmt.table = expect_ident("table name").text;
    if (!match(TokenKind::LParen)) fail("expected '('");
    stmt.column = expect_ident("column name").text;
    if (!match(TokenKind::RParen)) fail("expected ')'");
    return stmt;
  }

  const Token& peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() {
    const Token& t = peek();
    if (t.kind != TokenKind::End) ++pos_;
    return t;
  }
  bool match(TokenKind kind) {
    if (peek().kind == kind) {
      advance();
      return true;
    }
    return false;
  }
  bool match_kw(std::string_view keyword) {
    if (is_kw(peek(), keyword)) {
      advance();
      return true;
    }
    return false;
  }
  [[noreturn]] void fail(const std::string& message) const {
    const Token& t = peek();
    throw ParseError("MiniSQL: " + message + " (found " +
                         to_string(t.kind) +
                         (t.text.empty() ? "" : " '" + t.text + "'") + ")",
                     t.line, t.column);
  }
  const Token& expect_ident(std::string_view what) {
    if (peek().kind != TokenKind::Ident) fail("expected " + std::string(what));
    return advance();
  }

  bool next_is_keyword() const {
    const Token& t = peek();
    return is_kw(t, "from") || is_kw(t, "where") || is_kw(t, "and") ||
           is_kw(t, "or") || is_kw(t, "not") || is_kw(t, "as") ||
           is_kw(t, "select");
  }

  Query select_query() {
    if (!match_kw("select")) fail("expected SELECT");
    Query query;
    if (match(TokenKind::Star)) {
      query.star = true;
    } else {
      do {
        SelectItem item;
        item.column = column_ref();
        if (match_kw("as")) {
          item.alias = expect_ident("alias after AS").text;
        }
        query.items.push_back(std::move(item));
      } while (match(TokenKind::Comma));
    }
    if (!match_kw("from")) fail("expected FROM");
    do {
      TableRef ref;
      ref.table = expect_ident("table name").text;
      if (match_kw("as")) {
        ref.alias = expect_ident("alias after AS").text;
      } else if (peek().kind == TokenKind::Ident && !next_is_keyword()) {
        ref.alias = advance().text;
      }
      if (ref.alias.empty()) ref.alias = ref.table;
      query.tables.push_back(std::move(ref));
    } while (match(TokenKind::Comma));
    if (match_kw("where")) {
      query.where = or_pred();
    }
    return query;
  }

  ColumnRef column_ref() {
    ColumnRef ref;
    ref.column = expect_ident("column name").text;
    if (match(TokenKind::Dot)) {
      ref.table = ref.column;
      ref.column = expect_ident("column after '.'").text;
    }
    return ref;
  }

  PredPtr or_pred() {
    PredPtr left = and_pred();
    while (match_kw("or")) {
      left = Pred::disj(left, and_pred());
    }
    return left;
  }

  PredPtr and_pred() {
    PredPtr left = atom_pred();
    while (match_kw("and")) {
      left = Pred::conj(left, atom_pred());
    }
    return left;
  }

  PredPtr atom_pred() {
    if (match_kw("not")) {
      return Pred::negate(atom_pred());
    }
    if (match(TokenKind::LParen)) {
      PredPtr inner = or_pred();
      if (!match(TokenKind::RParen)) fail("expected ')'");
      return inner;
    }
    Operand lhs = operand();
    CmpOp op;
    switch (peek().kind) {
      case TokenKind::Eq:
        op = CmpOp::Eq;
        break;
      case TokenKind::Ne:
        op = CmpOp::Ne;
        break;
      case TokenKind::Lt:
        op = CmpOp::Lt;
        break;
      case TokenKind::Le:
        op = CmpOp::Le;
        break;
      case TokenKind::Gt:
        op = CmpOp::Gt;
        break;
      case TokenKind::Ge:
        op = CmpOp::Ge;
        break;
      default:
        fail("expected comparison operator");
    }
    advance();
    return Pred::cmp(op, std::move(lhs), operand());
  }

  Operand operand() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::IntLit: {
        advance();
        int64_t v = 0;
        std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
        return Operand::lit(Value::integer(v));
      }
      case TokenKind::DoubleLit:
        advance();
        return Operand::lit(Value::real(std::stod(t.text)));
      case TokenKind::StringLit:
        advance();
        return Operand::lit(Value::string(t.text));
      case TokenKind::Minus: {
        advance();
        const Token& n = peek();
        if (n.kind == TokenKind::IntLit) {
          advance();
          int64_t v = 0;
          std::from_chars(n.text.data(), n.text.data() + n.text.size(), v);
          return Operand::lit(Value::integer(-v));
        }
        if (n.kind == TokenKind::DoubleLit) {
          advance();
          return Operand::lit(Value::real(-std::stod(n.text)));
        }
        fail("expected number after '-'");
      }
      case TokenKind::Ident:
        if (iequals(t.text, "true")) {
          advance();
          return Operand::lit(Value::boolean(true));
        }
        if (iequals(t.text, "false")) {
          advance();
          return Operand::lit(Value::boolean(false));
        }
        if (iequals(t.text, "null")) {
          advance();
          return Operand::lit(Value::null());
        }
        return Operand::col(column_ref());
      default:
        fail("expected operand");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Query parse_minisql(const std::string& text) {
  return Parser(oql::tokenize(text)).run();
}

Statement parse_statement(const std::string& text) {
  return Parser(oql::tokenize(text)).run_statement();
}

std::vector<PredPtr> conjuncts(const PredPtr& predicate) {
  std::vector<PredPtr> out;
  if (predicate == nullptr) return out;
  if (predicate->kind == Pred::Kind::And) {
    auto left = conjuncts(predicate->left);
    auto right = conjuncts(predicate->right);
    out.insert(out.end(), left.begin(), left.end());
    out.insert(out.end(), right.begin(), right.end());
    return out;
  }
  out.push_back(predicate);
  return out;
}

}  // namespace disco::memdb
