// memdb: the relational engine that stands in for the paper's autonomous
// data sources (Postgres behind WrapperPostgres, §2.1). It is a complete,
// self-contained system with its own schema, its own query language
// (MiniSQL, minisql.hpp) and its own executor (engine.hpp); DISCO talks to
// it only through a wrapper that translates logical algebra into MiniSQL
// text — exactly the translation burden the paper assigns to the wrapper
// implementor (§1.4).
#pragma once

#include <string>
#include <vector>

#include "value/value.hpp"

namespace disco::memdb {

enum class ColumnType { Int, Real, Text, Bool };

const char* to_string(ColumnType type);

struct Column {
  std::string name;
  ColumnType type;
};

using Row = std::vector<Value>;

class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  /// Index of `column`, or -1.
  int column_index(const std::string& column) const;

  /// Appends a row after checking arity and column types (null allowed
  /// anywhere, int accepted for Real columns). Throws TypeError.
  void insert(Row row);
  void insert_all(std::vector<Row> rows);

  const std::vector<Row>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<Row> rows_;
};

}  // namespace disco::memdb
