// memdb: the relational engine that stands in for the paper's autonomous
// data sources (Postgres behind WrapperPostgres, §2.1). It is a complete,
// self-contained system with its own schema, its own query language
// (MiniSQL, minisql.hpp) and its own executor (engine.hpp); DISCO talks to
// it only through a wrapper that translates logical algebra into MiniSQL
// text — exactly the translation burden the paper assigns to the wrapper
// implementor (§1.4).
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "sources/memdb/index.hpp"
#include "value/value.hpp"

namespace disco::memdb {

enum class ColumnType { Int, Real, Text, Bool };

const char* to_string(ColumnType type);

struct Column {
  std::string name;
  ColumnType type;
};

using Row = std::vector<Value>;

class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<Column> columns);

  // Movable (Database stores tables by value), not copyable: secondary
  // indexes hold row positions that only make sense for one row vector.
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  /// Index of `column`, or -1.
  int column_index(const std::string& column) const;

  /// Appends a row after checking arity and column types (null allowed
  /// anywhere, int accepted for Real columns). Throws TypeError.
  /// Maintains every secondary index. Thread-safe against readers that
  /// hold mutex() shared (the MiniSQL engine does).
  void insert(Row row);
  void insert_all(std::vector<Row> rows);

  /// Deletes row `row` (a position in rows()). O(1): the last row swaps
  /// into the hole and its index entries are re-pointed, so row ids stay
  /// dense. Throws ExecutionError when out of range.
  void remove_row(size_t row);
  /// Replaces row `row` in place (same checks as insert), re-keying the
  /// indexes whose column changed.
  void update_row(size_t row, Row values);

  const std::vector<Row>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }

  /// Creates an ordered secondary index over `column` and backfills it
  /// from the existing rows. Throws CatalogError on a duplicate index
  /// name or unknown column.
  OrderedIndex& create_index(const std::string& index_name,
                             const std::string& column);
  const std::vector<std::unique_ptr<OrderedIndex>>& indexes() const {
    return indexes_;
  }
  /// The first index over column position `column`, or null.
  const OrderedIndex* index_on(size_t column) const;

  /// Reader/writer gate: mutators above take it exclusive; the MiniSQL
  /// engine holds it shared for a whole query (its Relation references
  /// rows_ throughout execution). Exposed so storms and future sources
  /// can coordinate whole multi-table transactions.
  std::shared_mutex& mutex() const { return *mutex_; }

 private:
  void check_row(const Row& row) const;

  std::string name_;
  std::vector<Column> columns_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<OrderedIndex>> indexes_;
  /// Behind a pointer so Table stays movable (Database rehashes).
  mutable std::unique_ptr<std::shared_mutex> mutex_ =
      std::make_unique<std::shared_mutex>();
};

}  // namespace disco::memdb
