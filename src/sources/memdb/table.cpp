#include "sources/memdb/table.hpp"

#include "common/error.hpp"

namespace disco::memdb {

const char* to_string(ColumnType type) {
  switch (type) {
    case ColumnType::Int:
      return "INT";
    case ColumnType::Real:
      return "REAL";
    case ColumnType::Text:
      return "TEXT";
    case ColumnType::Bool:
      return "BOOL";
  }
  return "?";
}

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  internal_check(!name_.empty(), "table needs a name");
  internal_check(!columns_.empty(), "table needs at least one column");
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      if (columns_[i].name == columns_[j].name) {
        throw TypeError("duplicate column '" + columns_[i].name +
                        "' in table '" + name_ + "'");
      }
    }
  }
}

int Table::column_index(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) return static_cast<int>(i);
  }
  return -1;
}

namespace {

bool conforms(const Value& value, ColumnType type) {
  if (value.is_null()) return true;
  switch (type) {
    case ColumnType::Int:
      return value.kind() == ValueKind::Int;
    case ColumnType::Real:
      return value.is_numeric();
    case ColumnType::Text:
      return value.kind() == ValueKind::String;
    case ColumnType::Bool:
      return value.kind() == ValueKind::Bool;
  }
  return false;
}

}  // namespace

void Table::insert(Row row) {
  if (row.size() != columns_.size()) {
    throw TypeError("table '" + name_ + "' expects " +
                    std::to_string(columns_.size()) + " values, got " +
                    std::to_string(row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!conforms(row[i], columns_[i].type)) {
      throw TypeError("column '" + columns_[i].name + "' of table '" +
                      name_ + "' expects " + to_string(columns_[i].type) +
                      ", got " + to_string(row[i].kind()));
    }
  }
  rows_.push_back(std::move(row));
}

void Table::insert_all(std::vector<Row> rows) {
  for (Row& row : rows) insert(std::move(row));
}

}  // namespace disco::memdb
