#include "sources/memdb/table.hpp"

#include <mutex>

#include "common/error.hpp"

namespace disco::memdb {

const char* to_string(ColumnType type) {
  switch (type) {
    case ColumnType::Int:
      return "INT";
    case ColumnType::Real:
      return "REAL";
    case ColumnType::Text:
      return "TEXT";
    case ColumnType::Bool:
      return "BOOL";
  }
  return "?";
}

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  internal_check(!name_.empty(), "table needs a name");
  internal_check(!columns_.empty(), "table needs at least one column");
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      if (columns_[i].name == columns_[j].name) {
        throw TypeError("duplicate column '" + columns_[i].name +
                        "' in table '" + name_ + "'");
      }
    }
  }
}

int Table::column_index(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) return static_cast<int>(i);
  }
  return -1;
}

namespace {

bool conforms(const Value& value, ColumnType type) {
  if (value.is_null()) return true;
  switch (type) {
    case ColumnType::Int:
      return value.kind() == ValueKind::Int;
    case ColumnType::Real:
      return value.is_numeric();
    case ColumnType::Text:
      return value.kind() == ValueKind::String;
    case ColumnType::Bool:
      return value.kind() == ValueKind::Bool;
  }
  return false;
}

}  // namespace

void Table::check_row(const Row& row) const {
  if (row.size() != columns_.size()) {
    throw TypeError("table '" + name_ + "' expects " +
                    std::to_string(columns_.size()) + " values, got " +
                    std::to_string(row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!conforms(row[i], columns_[i].type)) {
      throw TypeError("column '" + columns_[i].name + "' of table '" +
                      name_ + "' expects " + to_string(columns_[i].type) +
                      ", got " + to_string(row[i].kind()));
    }
  }
}

void Table::insert(Row row) {
  check_row(row);
  std::unique_lock lock(*mutex_);
  for (const std::unique_ptr<OrderedIndex>& index : indexes_) {
    index->insert(row[index->column()], rows_.size());
  }
  rows_.push_back(std::move(row));
}

void Table::insert_all(std::vector<Row> rows) {
  for (Row& row : rows) insert(std::move(row));
}

void Table::remove_row(size_t row) {
  std::unique_lock lock(*mutex_);
  if (row >= rows_.size()) {
    throw ExecutionError("table '" + name_ + "' has no row " +
                         std::to_string(row));
  }
  const size_t last = rows_.size() - 1;
  for (const std::unique_ptr<OrderedIndex>& index : indexes_) {
    index->erase(rows_[row][index->column()], row);
  }
  if (row != last) {
    // Swap-pop keeps ids dense; the moved row's entries must re-point.
    for (const std::unique_ptr<OrderedIndex>& index : indexes_) {
      index->erase(rows_[last][index->column()], last);
      index->insert(rows_[last][index->column()], row);
    }
    rows_[row] = std::move(rows_[last]);
  }
  rows_.pop_back();
}

void Table::update_row(size_t row, Row values) {
  check_row(values);
  std::unique_lock lock(*mutex_);
  if (row >= rows_.size()) {
    throw ExecutionError("table '" + name_ + "' has no row " +
                         std::to_string(row));
  }
  for (const std::unique_ptr<OrderedIndex>& index : indexes_) {
    const Value& before = rows_[row][index->column()];
    const Value& after = values[index->column()];
    if (Value::compare(before, after) == 0) continue;
    index->erase(before, row);
    index->insert(after, row);
  }
  rows_[row] = std::move(values);
}

OrderedIndex& Table::create_index(const std::string& index_name,
                                  const std::string& column) {
  int col = column_index(column);
  if (col == -1) {
    throw CatalogError("cannot index unknown column '" + column +
                       "' of table '" + name_ + "'");
  }
  std::unique_lock lock(*mutex_);
  for (const std::unique_ptr<OrderedIndex>& index : indexes_) {
    if (index->name() == index_name) {
      throw CatalogError("index '" + index_name + "' already exists on "
                         "table '" + name_ + "'");
    }
  }
  auto index = std::make_unique<OrderedIndex>(index_name,
                                              static_cast<size_t>(col));
  for (size_t row = 0; row < rows_.size(); ++row) {
    index->insert(rows_[row][index->column()], row);
  }
  indexes_.push_back(std::move(index));
  return *indexes_.back();
}

const OrderedIndex* Table::index_on(size_t column) const {
  for (const std::unique_ptr<OrderedIndex>& index : indexes_) {
    if (index->column() == column) return index.get();
  }
  return nullptr;
}

}  // namespace disco::memdb
