#include "sources/memdb/engine.hpp"

#include <algorithm>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <unordered_map>

#include "common/error.hpp"

namespace disco::memdb {

namespace {

/// Resolves a column reference against a layout. Unqualified names must be
/// unambiguous. Returns -1 when the reference does not belong to this
/// layout at all (so callers can classify predicates).
int find_column(const std::vector<OutColumn>& layout, const ColumnRef& ref) {
  int found = -1;
  for (size_t i = 0; i < layout.size(); ++i) {
    const OutColumn& col = layout[i];
    if (col.name != ref.column) continue;
    if (!ref.table.empty() && col.alias != ref.table) continue;
    if (found != -1) {
      throw ExecutionError("MiniSQL: ambiguous column '" + ref.to_sql() +
                           "'");
    }
    found = static_cast<int>(i);
  }
  return found;
}

void collect_refs(const PredPtr& pred, std::vector<const ColumnRef*>& out) {
  if (pred == nullptr) return;
  switch (pred->kind) {
    case Pred::Kind::Cmp:
      if (pred->lhs.kind == Operand::Kind::Column) out.push_back(&pred->lhs.column);
      if (pred->rhs.kind == Operand::Kind::Column) out.push_back(&pred->rhs.column);
      return;
    case Pred::Kind::Not:
      collect_refs(pred->left, out);
      return;
    case Pred::Kind::And:
    case Pred::Kind::Or:
      collect_refs(pred->left, out);
      collect_refs(pred->right, out);
      return;
  }
}

/// True when every column the predicate mentions resolves in `layout`.
bool covered_by(const PredPtr& pred, const std::vector<OutColumn>& layout) {
  std::vector<const ColumnRef*> refs;
  collect_refs(pred, refs);
  for (const ColumnRef* ref : refs) {
    if (find_column(layout, *ref) == -1) return false;
  }
  return true;
}

Value operand_value(const Operand& operand,
                    const std::vector<OutColumn>& layout, const Row& row) {
  if (operand.kind == Operand::Kind::Literal) return operand.literal;
  int index = find_column(layout, operand.column);
  if (index == -1) {
    throw ExecutionError("MiniSQL: unknown column '" +
                         operand.column.to_sql() + "'");
  }
  return row[static_cast<size_t>(index)];
}

bool eval_pred(const PredPtr& pred, const std::vector<OutColumn>& layout,
               const Row& row) {
  switch (pred->kind) {
    case Pred::Kind::Cmp: {
      Value lhs = operand_value(pred->lhs, layout, row);
      Value rhs = operand_value(pred->rhs, layout, row);
      int c = Value::compare(lhs, rhs);
      switch (pred->op) {
        case CmpOp::Eq:
          return c == 0;
        case CmpOp::Ne:
          return c != 0;
        case CmpOp::Lt:
          return c < 0;
        case CmpOp::Le:
          return c <= 0;
        case CmpOp::Gt:
          return c > 0;
        case CmpOp::Ge:
          return c >= 0;
      }
      return false;
    }
    case Pred::Kind::And:
      return eval_pred(pred->left, layout, row) &&
             eval_pred(pred->right, layout, row);
    case Pred::Kind::Or:
      return eval_pred(pred->left, layout, row) ||
             eval_pred(pred->right, layout, row);
    case Pred::Kind::Not:
      return !eval_pred(pred->left, layout, row);
  }
  return false;
}

/// Detects an equi-join conjunct linking `left` and `right`; returns the
/// column indexes (left_index, right_index).
std::optional<std::pair<int, int>> equi_key(
    const PredPtr& pred, const std::vector<OutColumn>& left,
    const std::vector<OutColumn>& right) {
  if (pred->kind != Pred::Kind::Cmp || pred->op != CmpOp::Eq) {
    return std::nullopt;
  }
  if (pred->lhs.kind != Operand::Kind::Column ||
      pred->rhs.kind != Operand::Kind::Column) {
    return std::nullopt;
  }
  int ll = find_column(left, pred->lhs.column);
  int rr = find_column(right, pred->rhs.column);
  if (ll != -1 && rr != -1) return std::make_pair(ll, rr);
  int lr = find_column(left, pred->rhs.column);
  int rl = find_column(right, pred->lhs.column);
  if (lr != -1 && rl != -1) return std::make_pair(lr, rl);
  return std::nullopt;
}

Row concat(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

// --- access-path classification --------------------------------------------
//
// A per-table conjunct can drive an index three ways:
//   * point:  col = literal (either orientation),
//   * batch:  an OR chain whose every disjunct is col = literal on the
//             SAME column — the bind join's key disjunction becomes a
//             batch of point probes instead of a per-row OR evaluation,
//   * range:  col </<=/>/>= literal (either orientation, op flipped).
// The index returns a candidate superset for that one conjunct; every
// conjunct is then re-checked on each candidate (residual re-check), so
// classification can never change answers — only skip non-candidates.
// Index comparator == eval_pred comparator (Value::compare), so the
// candidate set is exact for the chosen conjunct, nulls and mixed
// Int/Double keys included.

struct PointAtom {
  int column = -1;
  Value key;
};

std::optional<PointAtom> point_atom(const PredPtr& pred,
                                    const std::vector<OutColumn>& layout) {
  if (pred->kind != Pred::Kind::Cmp || pred->op != CmpOp::Eq) {
    return std::nullopt;
  }
  const Operand* col = nullptr;
  const Operand* lit = nullptr;
  if (pred->lhs.kind == Operand::Kind::Column &&
      pred->rhs.kind == Operand::Kind::Literal) {
    col = &pred->lhs;
    lit = &pred->rhs;
  } else if (pred->rhs.kind == Operand::Kind::Column &&
             pred->lhs.kind == Operand::Kind::Literal) {
    col = &pred->rhs;
    lit = &pred->lhs;
  } else {
    return std::nullopt;
  }
  int pos = find_column(layout, col->column);
  if (pos == -1) return std::nullopt;
  return PointAtom{pos, lit->literal};
}

/// Collects the keys of an OR chain of same-column equalities; false
/// when any disjunct breaks the shape.
bool batch_keys(const PredPtr& pred, const std::vector<OutColumn>& layout,
                int* column, std::vector<Value>* keys) {
  if (pred->kind == Pred::Kind::Or) {
    return batch_keys(pred->left, layout, column, keys) &&
           batch_keys(pred->right, layout, column, keys);
  }
  std::optional<PointAtom> atom = point_atom(pred, layout);
  if (!atom.has_value()) return false;
  if (*column == -1) {
    *column = atom->column;
  } else if (*column != atom->column) {
    return false;
  }
  keys->push_back(std::move(atom->key));
  return true;
}

struct RangeAtom {
  int column = -1;
  CmpOp op = CmpOp::Lt;
  Value bound;
};

std::optional<RangeAtom> range_atom(const PredPtr& pred,
                                    const std::vector<OutColumn>& layout) {
  if (pred->kind != Pred::Kind::Cmp) return std::nullopt;
  CmpOp op = pred->op;
  if (op == CmpOp::Eq || op == CmpOp::Ne) return std::nullopt;
  const Operand* col = nullptr;
  const Operand* lit = nullptr;
  bool flipped = false;
  if (pred->lhs.kind == Operand::Kind::Column &&
      pred->rhs.kind == Operand::Kind::Literal) {
    col = &pred->lhs;
    lit = &pred->rhs;
  } else if (pred->rhs.kind == Operand::Kind::Column &&
             pred->lhs.kind == Operand::Kind::Literal) {
    col = &pred->rhs;
    lit = &pred->lhs;
    flipped = true;  // 5 < c  ==  c > 5
  } else {
    return std::nullopt;
  }
  if (flipped) {
    switch (op) {
      case CmpOp::Lt:
        op = CmpOp::Gt;
        break;
      case CmpOp::Le:
        op = CmpOp::Ge;
        break;
      case CmpOp::Gt:
        op = CmpOp::Lt;
        break;
      case CmpOp::Ge:
        op = CmpOp::Le;
        break;
      default:
        break;
    }
  }
  int pos = find_column(layout, col->column);
  if (pos == -1) return std::nullopt;
  return RangeAtom{pos, op, lit->literal};
}

void tighten_low(OrderedIndex::Bound* bound, const Value& value,
                 bool inclusive) {
  if (!bound->present) {
    *bound = OrderedIndex::Bound::at(value, inclusive);
    return;
  }
  int c = Value::compare(value, bound->value);
  if (c > 0) {
    *bound = OrderedIndex::Bound::at(value, inclusive);
  } else if (c == 0 && bound->inclusive && !inclusive) {
    bound->inclusive = false;
  }
}

void tighten_high(OrderedIndex::Bound* bound, const Value& value,
                  bool inclusive) {
  if (!bound->present) {
    *bound = OrderedIndex::Bound::at(value, inclusive);
    return;
  }
  int c = Value::compare(value, bound->value);
  if (c < 0) {
    *bound = OrderedIndex::Bound::at(value, inclusive);
  } else if (c == 0 && bound->inclusive && !inclusive) {
    bound->inclusive = false;
  }
}

/// Candidate row ids for the best indexable conjunct (point beats batch
/// beats range), or nullopt when nothing qualifies. Ids come back sorted
/// ascending so indexed output preserves scan order.
std::optional<std::vector<size_t>> index_candidates(
    const Table& table, const std::vector<OutColumn>& layout,
    const std::vector<PredPtr>& preds, Engine::Stats* stats) {
  for (const PredPtr& pred : preds) {
    std::optional<PointAtom> atom = point_atom(pred, layout);
    if (!atom.has_value()) continue;
    const OrderedIndex* index =
        table.index_on(static_cast<size_t>(atom->column));
    if (index == nullptr) continue;
    std::vector<size_t> ids;
    index->probe(atom->key, &ids);
    ++stats->index_probes;
    return ids;  // equal-key runs are stored in row-id order
  }
  for (const PredPtr& pred : preds) {
    if (pred->kind != Pred::Kind::Or) continue;
    int column = -1;
    std::vector<Value> keys;
    if (!batch_keys(pred, layout, &column, &keys)) continue;
    const OrderedIndex* index = table.index_on(static_cast<size_t>(column));
    if (index == nullptr) continue;
    std::vector<size_t> ids;
    for (const Value& key : keys) index->probe(key, &ids);
    stats->index_probes += keys.size();
    // Unify-equal keys (1 vs 1.0) can probe the same run twice; a scan
    // emits such rows once, so the candidate set must too.
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  }
  // Range: fold every range conjunct on the same indexed column into the
  // tightest interval; the first such column (conjunct order) wins.
  int range_column = -1;
  OrderedIndex::Bound low, high;
  for (const PredPtr& pred : preds) {
    std::optional<RangeAtom> atom = range_atom(pred, layout);
    if (!atom.has_value()) continue;
    if (table.index_on(static_cast<size_t>(atom->column)) == nullptr) {
      continue;
    }
    if (range_column == -1) range_column = atom->column;
    if (range_column != atom->column) continue;
    switch (atom->op) {
      case CmpOp::Gt:
        tighten_low(&low, atom->bound, false);
        break;
      case CmpOp::Ge:
        tighten_low(&low, atom->bound, true);
        break;
      case CmpOp::Lt:
        tighten_high(&high, atom->bound, false);
        break;
      case CmpOp::Le:
        tighten_high(&high, atom->bound, true);
        break;
      default:
        break;
    }
  }
  if (range_column != -1) {
    const OrderedIndex* index =
        table.index_on(static_cast<size_t>(range_column));
    std::vector<size_t> ids;
    index->range(low, high, &ids);
    ++stats->index_probes;
    std::sort(ids.begin(), ids.end());  // key order -> row order
    return ids;
  }
  return std::nullopt;
}

}  // namespace

ResultSet Engine::execute_sql(const std::string& text) {
  Statement statement = parse_statement(text);
  if (statement.create_index.has_value()) {
    stats_ = Stats{};
    if (mutable_database_ == nullptr) {
      throw ExecutionError(
          "MiniSQL: CREATE INDEX needs a read-write engine");
    }
    const CreateIndexStmt& stmt = *statement.create_index;
    mutable_database_->table(stmt.table).create_index(stmt.index,
                                                      stmt.column);
    return ResultSet{};
  }
  return execute(*statement.query);
}

Engine::Relation Engine::scan(const TableRef& ref,
                              const std::vector<PredPtr>& preds) {
  const Table& table = database_->table(ref.table);
  Relation out;
  out.columns.reserve(table.columns().size());
  for (const Column& col : table.columns()) {
    out.columns.push_back(OutColumn{ref.alias, col.name});
  }

  // Residual re-check: every conjunct runs on every candidate, whether
  // the candidate came from a full scan or an index.
  auto keep = [&](const Row& row) {
    ++stats_.rows_scanned;
    for (const PredPtr& pred : preds) {
      if (!eval_pred(pred, out.columns, row)) return false;
    }
    ++stats_.rows_matched;
    return true;
  };

  std::optional<std::vector<size_t>> candidates;
  if (use_indexes_ && !preds.empty() && !table.indexes().empty()) {
    candidates = index_candidates(table, out.columns, preds, &stats_);
  }
  if (candidates.has_value()) {
    stats_.index_hits += candidates->size();
    for (size_t id : *candidates) {
      const Row& row = table.rows()[id];
      if (keep(row)) out.rows.push_back(row);
    }
  } else {
    for (const Row& row : table.rows()) {
      if (keep(row)) out.rows.push_back(row);
    }
  }
  return out;
}

Engine::Relation Engine::join(Relation left, Relation right,
                              const std::vector<PredPtr>& applicable) {
  // Split the applicable predicates into one equi-key (if any) driving the
  // physical algorithm, and residual predicates evaluated on each joined
  // candidate.
  std::optional<std::pair<int, int>> key;
  std::vector<PredPtr> residual;
  for (const PredPtr& pred : applicable) {
    if (!key.has_value()) {
      if (auto k = equi_key(pred, left.columns, right.columns)) {
        key = k;
        continue;
      }
    }
    residual.push_back(pred);
  }

  Relation out;
  out.columns = left.columns;
  out.columns.insert(out.columns.end(), right.columns.begin(),
                     right.columns.end());

  JoinStrategy strategy = strategy_;
  if (strategy == JoinStrategy::Auto) {
    bool big = left.rows.size() > 8 && right.rows.size() > 8;
    strategy = (key.has_value() && big) ? JoinStrategy::Hash
                                        : JoinStrategy::NestedLoop;
  }
  if (!key.has_value()) strategy = JoinStrategy::NestedLoop;

  auto emit = [&](const Row& l, const Row& r) {
    Row candidate = concat(l, r);
    for (const PredPtr& pred : residual) {
      if (!eval_pred(pred, out.columns, candidate)) return;
    }
    ++stats_.rows_joined;
    out.rows.push_back(std::move(candidate));
  };

  switch (strategy) {
    case JoinStrategy::NestedLoop: {
      ++stats_.nested_loop_joins;
      // Without an equi key the join predicate (if any) is in `residual`.
      std::vector<PredPtr> all = residual;
      if (key.has_value()) {
        // Forced nested loop still honours the equi predicate.
        for (const Row& l : left.rows) {
          for (const Row& r : right.rows) {
            if (Value::compare(l[static_cast<size_t>(key->first)],
                               r[static_cast<size_t>(key->second)]) != 0) {
              continue;
            }
            emit(l, r);
          }
        }
        break;
      }
      for (const Row& l : left.rows) {
        for (const Row& r : right.rows) emit(l, r);
      }
      break;
    }
    case JoinStrategy::Hash: {
      ++stats_.hash_joins;
      std::unordered_map<uint64_t, std::vector<const Row*>> buckets;
      for (const Row& r : right.rows) {
        buckets[r[static_cast<size_t>(key->second)].hash()].push_back(&r);
      }
      for (const Row& l : left.rows) {
        const Value& k = l[static_cast<size_t>(key->first)];
        auto it = buckets.find(k.hash());
        if (it == buckets.end()) continue;
        for (const Row* r : it->second) {
          if ((*r)[static_cast<size_t>(key->second)] != k) continue;
          emit(l, *r);
        }
      }
      break;
    }
    case JoinStrategy::Merge: {
      ++stats_.merge_joins;
      size_t lk = static_cast<size_t>(key->first);
      size_t rk = static_cast<size_t>(key->second);
      std::sort(left.rows.begin(), left.rows.end(),
                [lk](const Row& a, const Row& b) {
                  return Value::compare(a[lk], b[lk]) < 0;
                });
      std::sort(right.rows.begin(), right.rows.end(),
                [rk](const Row& a, const Row& b) {
                  return Value::compare(a[rk], b[rk]) < 0;
                });
      size_t i = 0;
      size_t j = 0;
      while (i < left.rows.size() && j < right.rows.size()) {
        int c = Value::compare(left.rows[i][lk], right.rows[j][rk]);
        if (c < 0) {
          ++i;
        } else if (c > 0) {
          ++j;
        } else {
          // Equal-key runs: cross product of the two runs.
          size_t i_end = i;
          while (i_end < left.rows.size() &&
                 Value::compare(left.rows[i_end][lk], right.rows[j][rk]) ==
                     0) {
            ++i_end;
          }
          size_t j_end = j;
          while (j_end < right.rows.size() &&
                 Value::compare(left.rows[i][lk], right.rows[j_end][rk]) ==
                     0) {
            ++j_end;
          }
          for (size_t a = i; a < i_end; ++a) {
            for (size_t b = j; b < j_end; ++b) {
              emit(left.rows[a], right.rows[b]);
            }
          }
          i = i_end;
          j = j_end;
        }
      }
      break;
    }
    case JoinStrategy::Auto:
      throw InternalError("Auto strategy must be resolved before joining");
  }
  return out;
}

ResultSet Engine::execute(const Query& query) {
  // Pinned contract (see last_stats()): every execute starts from a
  // zeroed Stats, so callers always read exactly one query's counters.
  stats_ = Stats{};
  internal_check(!query.tables.empty(), "query without tables");

  // Duplicate alias check.
  std::set<std::string> aliases;
  for (const TableRef& ref : query.tables) {
    if (!aliases.insert(ref.alias).second) {
      throw ExecutionError("MiniSQL: duplicate table alias '" + ref.alias +
                           "'");
    }
  }

  // Reader gate: hold every referenced table shared for the whole query
  // (Relations alias table rows until materialized). Deduped — a self
  // join must not lock the same mutex twice — and address-ordered.
  std::vector<const Table*> to_lock;
  for (const TableRef& ref : query.tables) {
    const Table* table = &database_->table(ref.table);
    if (std::find(to_lock.begin(), to_lock.end(), table) == to_lock.end()) {
      to_lock.push_back(table);
    }
  }
  std::sort(to_lock.begin(), to_lock.end());
  std::vector<std::shared_lock<std::shared_mutex>> guards;
  guards.reserve(to_lock.size());
  for (const Table* table : to_lock) guards.emplace_back(table->mutex());

  std::vector<PredPtr> all_conjuncts = conjuncts(query.where);
  std::vector<bool> used(all_conjuncts.size(), false);

  // Scan each table with the conjuncts that touch only that table.
  std::vector<Relation> relations;
  relations.reserve(query.tables.size());
  for (const TableRef& ref : query.tables) {
    const Table& table = database_->table(ref.table);
    std::vector<OutColumn> layout;
    for (const Column& col : table.columns()) {
      layout.push_back(OutColumn{ref.alias, col.name});
    }
    std::vector<PredPtr> local;
    for (size_t i = 0; i < all_conjuncts.size(); ++i) {
      if (used[i]) continue;
      if (covered_by(all_conjuncts[i], layout)) {
        local.push_back(all_conjuncts[i]);
        used[i] = true;
      }
    }
    relations.push_back(scan(ref, local));
  }

  // Left-deep joins in FROM order; each step consumes the conjuncts that
  // become evaluable once the next table joins in.
  Relation acc = std::move(relations.front());
  for (size_t t = 1; t < relations.size(); ++t) {
    std::vector<OutColumn> combined = acc.columns;
    combined.insert(combined.end(), relations[t].columns.begin(),
                    relations[t].columns.end());
    std::vector<PredPtr> applicable;
    for (size_t i = 0; i < all_conjuncts.size(); ++i) {
      if (used[i]) continue;
      if (covered_by(all_conjuncts[i], combined)) {
        applicable.push_back(all_conjuncts[i]);
        used[i] = true;
      }
    }
    acc = join(std::move(acc), std::move(relations[t]), applicable);
  }

  // Any conjunct left refers to columns that do not exist.
  for (size_t i = 0; i < all_conjuncts.size(); ++i) {
    if (!used[i]) {
      throw ExecutionError("MiniSQL: predicate references unknown column: " +
                           all_conjuncts[i]->to_sql());
    }
  }

  // Projection.
  if (query.star) {
    stats_.rows_returned = acc.rows.size();
    return ResultSet{std::move(acc.columns), std::move(acc.rows)};
  }
  ResultSet out;
  std::vector<size_t> indexes;
  for (const SelectItem& item : query.items) {
    int index = find_column(acc.columns, item.column);
    if (index == -1) {
      throw ExecutionError("MiniSQL: unknown column '" +
                           item.column.to_sql() + "' in select list");
    }
    indexes.push_back(static_cast<size_t>(index));
    OutColumn col = acc.columns[static_cast<size_t>(index)];
    if (!item.alias.empty()) col.name = item.alias;
    out.columns.push_back(std::move(col));
  }
  out.rows.reserve(acc.rows.size());
  for (const Row& row : acc.rows) {
    Row projected;
    projected.reserve(indexes.size());
    for (size_t index : indexes) projected.push_back(row[index]);
    out.rows.push_back(std::move(projected));
  }
  stats_.rows_returned = out.rows.size();
  return out;
}

}  // namespace disco::memdb
