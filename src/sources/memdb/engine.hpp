// MiniSQL execution engine.
//
// A small but real relational executor: per-table filter pushdown,
// index-aware selection (point / batched-point / range predicates route
// through a table's ordered secondary indexes with a residual re-check),
// left-deep joins with three physical algorithms (nested-loop, hash,
// sort-merge) selected automatically or forced for experiments, and
// projection. This is the "server" side of the wrapper boundary; the
// mediator never calls it directly.
#pragma once

#include <string>
#include <vector>

#include "sources/memdb/database.hpp"
#include "sources/memdb/minisql.hpp"

namespace disco::memdb {

/// Output column: the alias of the table it came from plus its name.
/// Wrappers use the alias to regroup joined rows into per-variable
/// structs for the mediator.
struct OutColumn {
  std::string alias;
  std::string name;
};

struct ResultSet {
  std::vector<OutColumn> columns;
  std::vector<Row> rows;
};

enum class JoinStrategy { Auto, NestedLoop, Hash, Merge };

class Engine {
 public:
  /// Read-only engine (the wrapper path): SELECT only.
  explicit Engine(const Database* database) : database_(database) {}
  /// Read-write engine: additionally accepts CREATE INDEX.
  explicit Engine(Database* database)
      : database_(database), mutable_database_(database) {}

  /// Forces a join algorithm (Auto picks hash for equi-joins with both
  /// sides over ~8 rows, nested-loop otherwise).
  void set_join_strategy(JoinStrategy strategy) { strategy_ = strategy; }

  /// When false, every selection scans even when an index applies — the
  /// reference path for the indexed-vs-scan differential tests/benches.
  void set_use_indexes(bool use) { use_indexes_ = use; }

  ResultSet execute(const Query& query);
  /// Parses and runs one statement. CREATE INDEX needs the read-write
  /// constructor (throws ExecutionError otherwise) and returns an empty
  /// ResultSet.
  ResultSet execute_sql(const std::string& text);

  struct Stats {
    size_t rows_scanned = 0;   ///< rows examined by scans (candidates)
    size_t rows_matched = 0;   ///< scan candidates that passed all preds
    size_t rows_returned = 0;  ///< rows in the final result set
    size_t index_hits = 0;     ///< candidate rows produced by an index
    size_t index_probes = 0;   ///< index lookups (point probes + ranges)
    size_t rows_joined = 0;
    size_t hash_joins = 0;
    size_t merge_joins = 0;
    size_t nested_loop_joins = 0;
  };
  /// Counters for the most recent execute()/execute_sql() call. The
  /// reset-per-execute contract is pinned by tests: every call starts
  /// from zeroes, so a caller (the wrapper) reads one query's numbers,
  /// never an accumulation — accumulate across queries on the caller's
  /// side if needed.
  const Stats& last_stats() const { return stats_; }

 private:
  struct Relation {
    std::vector<OutColumn> columns;
    std::vector<Row> rows;
  };

  Relation scan(const TableRef& ref,
                const std::vector<PredPtr>& single_table_preds);
  Relation join(Relation left, Relation right,
                const std::vector<PredPtr>& applicable);

  const Database* database_;
  Database* mutable_database_ = nullptr;
  JoinStrategy strategy_ = JoinStrategy::Auto;
  bool use_indexes_ = true;
  Stats stats_;
};

}  // namespace disco::memdb
