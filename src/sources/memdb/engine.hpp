// MiniSQL execution engine.
//
// A small but real relational executor: per-table filter pushdown,
// left-deep joins with three physical algorithms (nested-loop, hash,
// sort-merge) selected automatically or forced for experiments, and
// projection. This is the "server" side of the wrapper boundary; the
// mediator never calls it directly.
#pragma once

#include <string>
#include <vector>

#include "sources/memdb/database.hpp"
#include "sources/memdb/minisql.hpp"

namespace disco::memdb {

/// Output column: the alias of the table it came from plus its name.
/// Wrappers use the alias to regroup joined rows into per-variable
/// structs for the mediator.
struct OutColumn {
  std::string alias;
  std::string name;
};

struct ResultSet {
  std::vector<OutColumn> columns;
  std::vector<Row> rows;
};

enum class JoinStrategy { Auto, NestedLoop, Hash, Merge };

class Engine {
 public:
  explicit Engine(const Database* database) : database_(database) {}

  /// Forces a join algorithm (Auto picks hash for equi-joins with both
  /// sides over ~8 rows, nested-loop otherwise).
  void set_join_strategy(JoinStrategy strategy) { strategy_ = strategy; }

  ResultSet execute(const Query& query);
  ResultSet execute_sql(const std::string& text);

  struct Stats {
    size_t rows_scanned = 0;
    size_t rows_joined = 0;
    size_t hash_joins = 0;
    size_t merge_joins = 0;
    size_t nested_loop_joins = 0;
  };
  const Stats& last_stats() const { return stats_; }

 private:
  struct Relation {
    std::vector<OutColumn> columns;
    std::vector<Row> rows;
  };

  Relation scan(const TableRef& ref,
                const std::vector<PredPtr>& single_table_preds);
  Relation join(Relation left, Relation right,
                const std::vector<PredPtr>& applicable);

  const Database* database_;
  JoinStrategy strategy_ = JoinStrategy::Auto;
  Stats stats_;
};

}  // namespace disco::memdb
