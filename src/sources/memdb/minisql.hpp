// MiniSQL: the query language of the memdb data sources.
//
// This is deliberately *not* OQL — it is the "particular query language of
// the data source" (§1.1) that wrappers must translate into:
//
//   SELECT a, t.b AS x FROM t1, t2 u WHERE t1.k = u.k AND a > 10 AND ...
//
// Supported: projection lists with optional AS aliases or *, multiple
// comma-joined tables with optional aliases, and a boolean WHERE over
// comparisons between columns and literals (AND/OR/NOT, parentheses).
// No aggregates, no nesting — mirroring the paper's premise that data
// sources may be strictly weaker than the mediator's language, which is
// what makes capability grammars necessary.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "value/value.hpp"

namespace disco::memdb {

/// Possibly-qualified column reference (`t.a` or `a`).
struct ColumnRef {
  std::string table;  ///< alias; empty when unqualified
  std::string column;

  std::string to_sql() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// Scalar operand of a comparison.
struct Operand {
  enum class Kind { Column, Literal };
  Kind kind = Kind::Literal;
  ColumnRef column;  // when Column
  Value literal;     // when Literal

  static Operand col(ColumnRef ref) {
    return Operand{Kind::Column, std::move(ref), Value()};
  }
  static Operand lit(Value v) {
    return Operand{Kind::Literal, ColumnRef{}, std::move(v)};
  }
  std::string to_sql() const;
};

enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge };

const char* to_string(CmpOp op);

struct Pred;
using PredPtr = std::shared_ptr<const Pred>;

struct Pred {
  enum class Kind { Cmp, And, Or, Not };
  Kind kind = Kind::Cmp;
  // Cmp
  CmpOp op = CmpOp::Eq;
  Operand lhs, rhs;
  // And / Or / Not
  PredPtr left, right;  // Not uses left only

  static PredPtr cmp(CmpOp op, Operand lhs, Operand rhs);
  static PredPtr conj(PredPtr left, PredPtr right);
  static PredPtr disj(PredPtr left, PredPtr right);
  static PredPtr negate(PredPtr operand);

  std::string to_sql() const;
};

struct SelectItem {
  ColumnRef column;
  std::string alias;  ///< empty = column name
};

struct TableRef {
  std::string table;
  std::string alias;  ///< empty = table name
};

struct Query {
  bool star = false;
  std::vector<SelectItem> items;  // when !star
  std::vector<TableRef> tables;
  PredPtr where;  // may be null

  std::string to_sql() const;
};

/// The one DDL statement: CREATE INDEX name ON table (column). Sources
/// own their physical design (§1.1) — the mediator never issues this;
/// it is for the DBA loading the source (tests, benches, setup scripts).
struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::string column;

  std::string to_sql() const {
    return "CREATE INDEX " + index + " ON " + table + " (" + column + ")";
  }
};

/// A full MiniSQL statement: either a query or CREATE INDEX.
struct Statement {
  std::optional<Query> query;
  std::optional<CreateIndexStmt> create_index;
};

/// Parses MiniSQL text; throws ParseError / LexError.
Query parse_minisql(const std::string& text);

/// Like parse_minisql but also accepts CREATE INDEX.
Statement parse_statement(const std::string& text);

/// Splits a predicate into top-level AND conjuncts.
std::vector<PredPtr> conjuncts(const PredPtr& predicate);

}  // namespace disco::memdb
