#include "sources/docstore/doc_store.hpp"

#include "common/error.hpp"
#include "server/json.hpp"

namespace disco::docstore {

Value doc_from_json(const server::json::Value& json) {
  using JKind = server::json::Value::Kind;
  switch (json.kind()) {
    case JKind::Null:
      return Value::null();
    case JKind::Bool:
      return Value::boolean(json.as_bool());
    case JKind::Int:
      return Value::integer(json.as_int64());
    case JKind::Double:
      return Value::real(json.as_double());
    case JKind::String:
      return Value::string(json.as_string());
    case JKind::Array: {
      std::vector<Value> items;
      items.reserve(json.items().size());
      for (const server::json::Value& item : json.items()) {
        items.push_back(doc_from_json(item));
      }
      return Value::list(std::move(items));
    }
    case JKind::Object: {
      std::vector<std::pair<std::string, Value>> fields;
      fields.reserve(json.members().size());
      for (const auto& [key, member] : json.members()) {
        for (const auto& [seen, unused] : fields) {
          if (seen == key) {
            throw ExecutionError("docstore: duplicate key '" + key +
                                 "' in JSON object");
          }
        }
        fields.emplace_back(key, doc_from_json(member));
      }
      return Value::strct(std::move(fields));
    }
  }
  throw InternalError("corrupt JSON value kind");
}

void DocCollection::insert(Value doc) {
  if (doc.kind() != ValueKind::Struct) {
    throw TypeError("docstore '" + name_ + "': documents are struct values, got " +
                    doc.to_oql());
  }
  const size_t position = docs_.size();
  for (auto& [path_text, index] : indexes_) {
    index[index_paths_.at(path_text).eval(doc)].push_back(position);
  }
  docs_.push_back(std::move(doc));
  store_->documents_.fetch_add(1, std::memory_order_relaxed);
}

size_t DocCollection::load_json(const std::string& text) {
  server::json::Value parsed;
  try {
    parsed = server::json::parse(text);
  } catch (const server::json::JsonError& e) {
    throw ExecutionError("docstore '" + name_ + "': " + e.what());
  }
  auto insert_object = [&](const server::json::Value& json) {
    if (json.kind() != server::json::Value::Kind::Object) {
      throw ExecutionError("docstore '" + name_ +
                           "': documents must be JSON objects");
    }
    insert(doc_from_json(json));
  };
  if (parsed.kind() == server::json::Value::Kind::Array) {
    for (const server::json::Value& item : parsed.items()) {
      insert_object(item);
    }
    return parsed.items().size();
  }
  insert_object(parsed);
  return 1;
}

void DocCollection::create_index(const std::string& path_text) {
  if (indexes_.count(path_text) != 0) return;
  DocPath path = DocPath::parse(path_text);
  if (path.has_wildcard()) {
    throw ExecutionError("docstore '" + name_ + "': cannot index wildcard path '" +
                         path_text + "'");
  }
  std::map<Value, std::vector<size_t>> index;
  for (size_t i = 0; i < docs_.size(); ++i) {
    index[path.eval(docs_[i])].push_back(i);
  }
  indexes_.emplace(path_text, std::move(index));
  index_paths_.emplace(path_text, std::move(path));
}

bool DocCollection::has_index(const std::string& path_text) const {
  return indexes_.count(path_text) != 0;
}

std::vector<size_t> DocCollection::find_equal(const DocPath& path,
                                              const Value& key,
                                              bool* used_index,
                                              size_t* docs_examined) const {
  auto it = indexes_.find(path.to_text());
  if (it != indexes_.end() && store_->use_indexes()) {
    store_->index_probes_.fetch_add(1, std::memory_order_relaxed);
    std::vector<size_t> out;
    auto entry = it->second.find(key);
    if (entry != it->second.end()) out = entry->second;
    store_->index_hits_.fetch_add(out.size(), std::memory_order_relaxed);
    if (used_index != nullptr) *used_index = true;
    if (docs_examined != nullptr) *docs_examined = out.size();
    return out;
  }
  store_->scans_.fetch_add(1, std::memory_order_relaxed);
  store_->docs_scanned_.fetch_add(docs_.size(), std::memory_order_relaxed);
  std::vector<size_t> out;
  for (size_t i = 0; i < docs_.size(); ++i) {
    if (Value::compare(path.eval(docs_[i]), key) == 0) out.push_back(i);
  }
  if (used_index != nullptr) *used_index = false;
  if (docs_examined != nullptr) *docs_examined = docs_.size();
  return out;
}

const std::vector<Value>& DocCollection::scan() const {
  store_->scans_.fetch_add(1, std::memory_order_relaxed);
  store_->docs_scanned_.fetch_add(docs_.size(), std::memory_order_relaxed);
  return docs_;
}

DocCollection& DocStore::create_collection(const std::string& collection) {
  if (collections_.count(collection) != 0) {
    throw ExecutionError("docstore '" + name_ + "': collection '" + collection +
                         "' already exists");
  }
  auto owned = std::unique_ptr<DocCollection>(
      new DocCollection(collection, this));
  DocCollection& ref = *owned;
  collections_.emplace(collection, std::move(owned));
  return ref;
}

bool DocStore::has_collection(const std::string& collection) const {
  return collections_.count(collection) != 0;
}

DocCollection& DocStore::collection(const std::string& collection) {
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    throw ExecutionError("docstore '" + name_ + "': no collection '" +
                         collection + "'");
  }
  return *it->second;
}

const DocCollection& DocStore::collection(const std::string& collection) const {
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    throw ExecutionError("docstore '" + name_ + "': no collection '" +
                         collection + "'");
  }
  return *it->second;
}

DocStore::Stats DocStore::stats() const {
  Stats out;
  out.scans = scans_.load(std::memory_order_relaxed);
  out.docs_scanned = docs_scanned_.load(std::memory_order_relaxed);
  out.index_probes = index_probes_.load(std::memory_order_relaxed);
  out.index_hits = index_hits_.load(std::memory_order_relaxed);
  out.documents = documents_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace disco::docstore
