// Semi-structured document source.
//
// A fourth kind of server in the heterogeneity spectrum (§2.2: "the
// DISCO model can be applied to a variety of information servers"): a
// store of named collections of JSON documents. Documents are
// heterogeneous — two documents in one collection may have different
// fields, nesting depth, or array shapes — and surface in the mediator's
// object model as struct values (nested objects -> struct, arrays ->
// List), with absent fields reading as nil.
//
// Native access paths, advertised by the doc wrapper's capability
// grammar (src/wrapper/doc_wrapper.*):
//   * full collection scan;
//   * path-equality probe, optionally served by a secondary index keyed
//     on a DocPath's value per document (create_index).
//
// Ingestion is the strict boundary: JSON text goes through the
// server/json parser (which rejects non-finite numbers — the same
// hazard the CSV source closes by refusing to type nan/inf as Double),
// and object-to-struct conversion rejects duplicate keys instead of
// silently dropping one. Programmatic insert() is permissive: a NaN
// Double built in-process is storable because Value's total order gives
// it a stable position (NaN == NaN, after every number).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sources/docstore/doc_path.hpp"
#include "value/value.hpp"

namespace disco::server::json {
class Value;
}  // namespace disco::server::json

namespace disco::docstore {

/// Converts a parsed JSON document into the mediator object model:
/// object -> struct (member order preserved; duplicate keys rejected
/// with ExecutionError), array -> List, scalars -> the matching Value.
Value doc_from_json(const server::json::Value& json);

class DocStore;

/// One named collection of documents (struct values).
class DocCollection {
 public:
  const std::string& name() const { return name_; }

  /// Inserts one document (a struct value); maintains all indexes.
  /// Throws TypeError for non-struct values.
  void insert(Value doc);

  /// Parses `text` — one JSON object, or a JSON array of objects — and
  /// inserts each document. Returns the number inserted. Throws
  /// ExecutionError on malformed JSON (including non-finite numbers) or
  /// non-object documents.
  size_t load_json(const std::string& text);

  const std::vector<Value>& docs() const { return docs_; }
  size_t size() const { return docs_.size(); }

  /// Builds a secondary index keyed on the path's value per document
  /// (nil for documents lacking the path, so nil probes answer
  /// consistently with scans). Wildcard paths are not indexable; the
  /// path must apply to every current document (the type errors DocPath
  /// raises propagate). Idempotent for an already-indexed path.
  void create_index(const std::string& path_text);
  bool has_index(const std::string& path_text) const;

  /// Document positions whose `path` value equals `key` under Value's
  /// total order (so a NaN probe finds NaN entries). Served by the index
  /// when one exists on `path.to_text()` and the store allows indexes;
  /// otherwise a counted scan. `used_index`/`docs_examined` report the
  /// access path taken for the caller's cost accounting.
  std::vector<size_t> find_equal(const DocPath& path, const Value& key,
                                 bool* used_index = nullptr,
                                 size_t* docs_examined = nullptr) const;

  /// Full scan (counts toward store stats).
  const std::vector<Value>& scan() const;

 private:
  friend class DocStore;
  DocCollection(std::string name, DocStore* store)
      : name_(std::move(name)), store_(store) {}

  std::string name_;
  DocStore* store_;
  std::vector<Value> docs_;
  /// path text -> (path value -> document positions)
  std::map<std::string, std::map<Value, std::vector<size_t>>> indexes_;
  std::map<std::string, DocPath> index_paths_;
};

/// A repository of document collections.
class DocStore {
 public:
  explicit DocStore(std::string name = "docstore") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  DocCollection& create_collection(const std::string& collection);
  bool has_collection(const std::string& collection) const;
  DocCollection& collection(const std::string& collection);
  const DocCollection& collection(const std::string& collection) const;

  /// When false, find_equal ignores indexes and always scans — the
  /// forced-scan mode the differential tests use to pin index answers
  /// against scan answers. Queries may run concurrently; toggling and
  /// mutation (insert / create_index / load) are setup-time operations.
  void set_use_indexes(bool v) { use_indexes_.store(v); }
  bool use_indexes() const { return use_indexes_.load(); }

  /// Access-path counters (evidence for the pushdown experiments).
  /// Atomic: the mediator runs wrapper submits from worker threads.
  struct Stats {
    uint64_t scans = 0;          ///< full-scan accesses
    uint64_t docs_scanned = 0;   ///< documents examined by scans
    uint64_t index_probes = 0;   ///< index lookups
    uint64_t index_hits = 0;     ///< documents returned by index lookups
    uint64_t documents = 0;      ///< documents currently stored
  };
  Stats stats() const;

 private:
  friend class DocCollection;

  std::string name_;
  std::map<std::string, std::unique_ptr<DocCollection>> collections_;
  std::atomic<bool> use_indexes_{true};
  mutable std::atomic<uint64_t> scans_{0};
  mutable std::atomic<uint64_t> docs_scanned_{0};
  mutable std::atomic<uint64_t> index_probes_{0};
  mutable std::atomic<uint64_t> index_hits_{0};
  std::atomic<uint64_t> documents_{0};
};

}  // namespace disco::docstore
