// Path expressions over semi-structured documents (src/sources/docstore/).
//
// A DocPath addresses a position inside a JSON-shaped Value:
//
//   meta.site            object field steps
//   samples[0].ph        array index step, then a field
//   samples[*].ph        wildcard step: every element, set-valued result
//
// The doc wrapper (src/wrapper/doc_wrapper.*) flattens mediator
// attributes through these paths: the source side of an ODL type-map
// pair is parsed as a DocPath, so `map ((meta.site=site))` makes the
// mediator attribute `site` read from each document's meta.site. Nested
// objects surface as `struct` values, arrays as `List`, and a wildcard
// path yields the List of all matches.
//
// Evaluation mirrors the mediator's own path semantics (oql/eval.cpp)
// exactly, so a predicate pushed to the source and the same predicate
// evaluated mediator-side over fetched documents agree:
//   * nil propagates through every step;
//   * a missing object field reads as nil;
//   * a field step over a non-struct non-nil value is a type error;
//   * an out-of-range index reads as nil; an index step over a non-list
//     non-nil value is a type error;
//   * below a wildcard, elements the rest of the path does not apply to
//     are skipped instead of erroring (a wildcard is a set-valued query;
//     absence contributes nothing).
#pragma once

#include <string>
#include <vector>

#include "value/value.hpp"

namespace disco::docstore {

struct PathStep {
  enum class Kind { Field, Index, Wildcard };
  Kind kind = Kind::Field;
  std::string field;  ///< when Kind::Field
  size_t index = 0;   ///< when Kind::Index
};

class DocPath {
 public:
  /// The empty path: the whole document.
  DocPath() = default;

  /// Parses "a.b[0].c" / "items[*].id" / "" (whole document).
  /// Throws ExecutionError on malformed text.
  static DocPath parse(const std::string& text);

  /// Applies the path to `doc`. Non-wildcard paths return the single
  /// addressed value (nil when absent); wildcard paths return the List
  /// of all matches. Throws ExecutionError on the type errors described
  /// in the header comment.
  Value eval(const Value& doc) const;

  /// Extends the path with trailing field steps (the mediator-side tail
  /// of a nested OQL path chain: x.payload.a -> map(payload) + ".a").
  DocPath with_fields(const std::vector<std::string>& names) const;

  bool whole_document() const { return steps_.empty(); }
  bool has_wildcard() const;
  const std::vector<PathStep>& steps() const { return steps_; }

  /// Canonical text form; parse(to_text()) round-trips. Used as the
  /// index key in DocCollection.
  std::string to_text() const;

 private:
  void collect(const Value& value, size_t step, bool below_wildcard,
               std::vector<Value>& out) const;

  std::vector<PathStep> steps_;
};

}  // namespace disco::docstore
