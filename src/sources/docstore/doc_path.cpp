#include "sources/docstore/doc_path.hpp"

#include <cctype>

#include "common/error.hpp"

namespace disco::docstore {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

DocPath DocPath::parse(const std::string& text) {
  DocPath path;
  size_t i = 0;
  auto fail = [&](const std::string& message) {
    throw ExecutionError("doc path '" + text + "': " + message +
                         " at offset " + std::to_string(i));
  };
  auto field = [&] {
    if (i >= text.size() || !ident_start(text[i])) fail("expected a field name");
    size_t start = i;
    while (i < text.size() && ident_char(text[i])) ++i;
    PathStep step;
    step.kind = PathStep::Kind::Field;
    step.field = text.substr(start, i - start);
    path.steps_.push_back(std::move(step));
  };
  auto bracket = [&] {
    ++i;  // '['
    PathStep step;
    if (i < text.size() && text[i] == '*') {
      step.kind = PathStep::Kind::Wildcard;
      ++i;
    } else {
      if (i >= text.size() || std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
        fail("expected an index or '*' after '['");
      }
      size_t start = i;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
        ++i;
      }
      step.kind = PathStep::Kind::Index;
      step.index = static_cast<size_t>(
          std::stoull(text.substr(start, i - start)));
    }
    if (i >= text.size() || text[i] != ']') fail("expected ']'");
    ++i;
    path.steps_.push_back(std::move(step));
  };

  if (text.empty()) return path;  // the whole document
  field();
  while (i < text.size()) {
    if (text[i] == '.') {
      ++i;
      field();
    } else if (text[i] == '[') {
      bracket();
    } else {
      fail("expected '.' or '['");
    }
  }
  return path;
}

DocPath DocPath::with_fields(const std::vector<std::string>& names) const {
  DocPath extended = *this;
  for (const std::string& name : names) {
    PathStep step;
    step.kind = PathStep::Kind::Field;
    step.field = name;
    extended.steps_.push_back(std::move(step));
  }
  return extended;
}

bool DocPath::has_wildcard() const {
  for (const PathStep& step : steps_) {
    if (step.kind == PathStep::Kind::Wildcard) return true;
  }
  return false;
}

std::string DocPath::to_text() const {
  std::string out;
  for (const PathStep& step : steps_) {
    switch (step.kind) {
      case PathStep::Kind::Field:
        if (!out.empty()) out += '.';
        out += step.field;
        break;
      case PathStep::Kind::Index:
        out += '[' + std::to_string(step.index) + ']';
        break;
      case PathStep::Kind::Wildcard:
        out += "[*]";
        break;
    }
  }
  return out;
}

void DocPath::collect(const Value& value, size_t step_index,
                      bool below_wildcard, std::vector<Value>& out) const {
  if (step_index == steps_.size()) {
    out.push_back(value);
    return;
  }
  const PathStep& step = steps_[step_index];
  switch (step.kind) {
    case PathStep::Kind::Field: {
      if (value.kind() == ValueKind::Null) {
        collect(Value::null(), step_index + 1, below_wildcard, out);
        return;
      }
      if (value.kind() != ValueKind::Struct) {
        if (below_wildcard) return;  // non-applicable element: no match
        throw ExecutionError("doc path '" + to_text() + "': field '" +
                             step.field + "' applied to non-struct value " +
                             value.to_oql());
      }
      const Value* found = value.find_field(step.field);
      collect(found != nullptr ? *found : Value::null(), step_index + 1,
              below_wildcard, out);
      return;
    }
    case PathStep::Kind::Index: {
      if (value.kind() == ValueKind::Null) {
        collect(Value::null(), step_index + 1, below_wildcard, out);
        return;
      }
      if (value.kind() != ValueKind::List) {
        if (below_wildcard) return;
        throw ExecutionError("doc path '" + to_text() + "': index [" +
                             std::to_string(step.index) +
                             "] applied to non-list value " + value.to_oql());
      }
      const std::vector<Value>& items = value.items();
      collect(step.index < items.size() ? items[step.index] : Value::null(),
              step_index + 1, below_wildcard, out);
      return;
    }
    case PathStep::Kind::Wildcard: {
      // An absent array contributes no matches, mirroring the missing-
      // field-reads-as-nil rule one level up.
      if (value.kind() == ValueKind::Null) return;
      if (value.kind() != ValueKind::List) {
        if (below_wildcard) return;
        throw ExecutionError("doc path '" + to_text() +
                             "': [*] applied to non-list value " +
                             value.to_oql());
      }
      for (const Value& item : value.items()) {
        collect(item, step_index + 1, /*below_wildcard=*/true, out);
      }
      return;
    }
  }
  throw InternalError("corrupt doc path step");
}

Value DocPath::eval(const Value& doc) const {
  std::vector<Value> out;
  collect(doc, 0, /*below_wildcard=*/false, out);
  if (has_wildcard()) return Value::list(std::move(out));
  internal_check(out.size() == 1, "non-wildcard doc path must yield one value");
  return std::move(out.front());
}

}  // namespace disco::docstore
