// Key-value data source.
//
// A third kind of server in the heterogeneity spectrum (§2.2: "the DISCO
// model can be applied to a variety of information servers"): a store
// whose *only* API is get-by-key plus full scan — no query language at
// all ("the wrapper may use the underlying database API", §6.2). Its
// wrapper advertises a grammar where select takes an EQPREDICATE, the
// §3.2 mechanism for describing "support for certain comparison
// operators": equality lookups push down, range predicates stay at the
// mediator.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "value/value.hpp"

namespace disco::kvstore {

/// One keyed collection: key attribute name + rows indexed by key value.
class KvCollection {
 public:
  KvCollection() = default;
  KvCollection(std::string name, std::string key_attribute);

  const std::string& name() const { return name_; }
  const std::string& key_attribute() const { return key_attribute_; }

  /// Inserts a struct row; its key attribute must be present. Duplicate
  /// keys are allowed (multi-map semantics). Throws TypeError.
  void put(Value row);

  /// All rows with the given key (possibly empty).
  std::vector<Value> lookup(const Value& key) const;

  /// Full scan, in key order.
  std::vector<Value> scan() const;

  size_t size() const { return rows_; }

 private:
  std::string name_;
  std::string key_attribute_;
  std::map<Value, std::vector<Value>> by_key_;
  size_t rows_ = 0;
};

/// A repository of keyed collections.
class KvStore {
 public:
  explicit KvStore(std::string name = "kv") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  KvCollection& create_collection(const std::string& collection,
                                  const std::string& key_attribute);
  bool has_collection(const std::string& collection) const;
  KvCollection& collection(const std::string& collection);
  const KvCollection& collection(const std::string& collection) const;

  /// API-level counters: how often each access path was used (evidence
  /// for the pushdown experiments).
  struct ApiStats {
    size_t lookups = 0;
    size_t scans = 0;
  };
  ApiStats& stats() { return stats_; }
  const ApiStats& stats() const { return stats_; }

 private:
  std::string name_;
  std::unordered_map<std::string, KvCollection> collections_;
  ApiStats stats_;
};

}  // namespace disco::kvstore
