#include "sources/kvstore/kv_store.hpp"

#include "common/error.hpp"

namespace disco::kvstore {

KvCollection::KvCollection(std::string name, std::string key_attribute)
    : name_(std::move(name)), key_attribute_(std::move(key_attribute)) {
  internal_check(!name_.empty() && !key_attribute_.empty(),
                 "collection needs a name and a key attribute");
}

void KvCollection::put(Value row) {
  if (row.kind() != ValueKind::Struct) {
    throw TypeError("kv collection '" + name_ + "' stores structs, got " +
                    to_string(row.kind()));
  }
  const Value* key = row.find_field(key_attribute_);
  if (key == nullptr) {
    throw TypeError("kv row is missing the key attribute '" +
                    key_attribute_ + "'");
  }
  by_key_[*key].push_back(std::move(row));
  ++rows_;
}

std::vector<Value> KvCollection::lookup(const Value& key) const {
  auto it = by_key_.find(key);
  return it == by_key_.end() ? std::vector<Value>{} : it->second;
}

std::vector<Value> KvCollection::scan() const {
  std::vector<Value> out;
  out.reserve(rows_);
  for (const auto& [key, rows] : by_key_) {
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

KvCollection& KvStore::create_collection(const std::string& collection,
                                         const std::string& key_attribute) {
  if (collections_.contains(collection)) {
    throw CatalogError("kv collection '" + collection +
                       "' already exists in store '" + name_ + "'");
  }
  return collections_
      .emplace(collection, KvCollection(collection, key_attribute))
      .first->second;
}

bool KvStore::has_collection(const std::string& collection) const {
  return collections_.contains(collection);
}

KvCollection& KvStore::collection(const std::string& collection) {
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    throw CatalogError("no kv collection '" + collection + "' in store '" +
                       name_ + "'");
  }
  return it->second;
}

const KvCollection& KvStore::collection(const std::string& collection) const {
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    throw CatalogError("no kv collection '" + collection + "' in store '" +
                       name_ + "'");
  }
  return it->second;
}

}  // namespace disco::kvstore
