// Mediator-boundary translation, shared by every mediator-as-source
// wrapper (core/mediator_wrapper.hpp in-process, fedcat/mediator_source
// for hierarchical federations).
//
// A pushed logical expression names *this* mediator's extents and
// attributes; the remote mediator knows them by its own names. The
// TypeMaps in the BindingMap carry the translation both ways: rename the
// expression on the way out, rename env-shaped rows on the way back.
#pragma once

#include <string>
#include <unordered_map>

#include "algebra/logical.hpp"
#include "catalog/type_map.hpp"
#include "value/value.hpp"
#include "wrapper/wrapper.hpp"

namespace disco::fedcat {

/// A logical expression rewritten into the remote name space, plus the
/// per-variable maps needed to rename answer rows back.
struct RenamedQuery {
  algebra::LogicalPtr expr;
  std::unordered_map<std::string, const catalog::TypeMap*> var_maps;
};

/// Rewrites extent and attribute names through the bindings. Throws
/// ExecutionError when `expr` contains an operator or expression form
/// that cannot cross the mediator boundary (union, const, aggregates).
RenamedQuery rename_for_remote(const algebra::LogicalPtr& expr,
                               const wrapper::BindingMap& bindings);

/// Renames an env-shaped answer (bag of struct(var: row)) from remote
/// attribute names back into this mediator's names, per var_maps.
Value rename_rows_to_mediator(
    const Value& data,
    const std::unordered_map<std::string, const catalog::TypeMap*>&
        var_maps);

}  // namespace disco::fedcat
