// Hierarchical federation (src/fedcat/): a mediator as a data source.
//
// Figure 1's composition arrow, generalized: MediatorSource is a
// wrapper::Wrapper whose "repository" is another *mediator* — either an
// in-process Mediator object or a mediator daemon reached over the wire
// (src/server/). A root mediator registers extents whose wrapper is a
// MediatorSource; pushed logical expressions are renamed through the
// type maps (fedcat/boundary.hpp), shipped as OQL (mediators share the
// language), and the answer rows are renamed back. Federations thus
// compose into trees: each child mediator aggregates its own thousands
// of sources, and the root's catalog holds one extent per child.
//
// Like the in-process MediatorWrapper, the remote mediator must answer
// *completely*: a remote partial answer raises ExecutionError (residuals
// would mix two mediators' name spaces — the §6.2 open question). Over
// the wire the source subscribes at submit and blocks for the COMPLETE
// push, so the child's own §4 resubmission machinery is free to finish
// partial answers within the deadline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/answer.hpp"
#include "wrapper/wrapper.hpp"

namespace disco {
class Mediator;
}  // namespace disco

namespace disco::fedcat {

class MediatorSource : public wrapper::Wrapper {
 public:
  /// Wraps an in-process mediator; `remote` must outlive this source.
  static std::shared_ptr<MediatorSource> in_process(Mediator* remote);

  /// Connects to a mediator daemon (blocking; throws ExecutionError on
  /// failure). `deadline_s` bounds every shipped sub-query: submit +
  /// wait for its COMPLETE push. The connection is owned by the source
  /// and serialized internally, so submit() may run concurrently from
  /// executor threads.
  static std::shared_ptr<MediatorSource> connect(const std::string& host,
                                                 uint16_t port,
                                                 double deadline_s = 30.0);

  /// Mediators speak full OQL: every operator, composed.
  grammar::Grammar capabilities() const override;
  wrapper::SubmitResult submit(const catalog::Repository& repository,
                               const algebra::LogicalPtr& expr,
                               const wrapper::BindingMap& bindings) override;
  std::string kind() const override { return "mediator"; }

  /// Last OQL text shipped to the child mediator (for tests). Snapshot:
  /// submit() may run concurrently on executor threads.
  std::string last_oql() const {
    std::lock_guard<std::mutex> lock(last_oql_mutex_);
    return last_oql_;
  }

 private:
  /// Ships one OQL text to the child and returns its answer.
  using QueryFn = std::function<Answer(const std::string& oql)>;
  explicit MediatorSource(QueryFn query);

  QueryFn query_;
  mutable std::mutex last_oql_mutex_;
  std::string last_oql_;
};

}  // namespace disco::fedcat
