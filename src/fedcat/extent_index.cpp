#include "fedcat/extent_index.hpp"

namespace disco::fedcat {

namespace {
const std::vector<std::string> kEmptyNames;
const std::string kEmptySignature;
}  // namespace

ExtentIndex ExtentIndex::build(const catalog::Catalog& catalog,
                               const WrapperMap& wrappers) {
  ExtentIndex index;
  for (const std::string& name : catalog.extent_names()) {
    const catalog::MetaExtent& extent = catalog.extent(name);
    index.by_interface_[extent.interface].push_back(name);
    auto sig = index.wrapper_signature_.find(extent.wrapper);
    if (sig == index.wrapper_signature_.end()) {
      auto wrapper = wrappers.find(extent.wrapper);
      std::string text = wrapper != wrappers.end() && wrapper->second != nullptr
                             ? wrapper->second->capabilities().to_text()
                             : std::string();
      sig = index.wrapper_signature_.emplace(extent.wrapper, std::move(text))
                .first;
    }
    index.by_signature_[sig->second].push_back(name);
    ++index.total_extents_;
  }
  return index;
}

const std::vector<std::string>& ExtentIndex::extents_of_interface(
    const std::string& interface) const {
  auto it = by_interface_.find(interface);
  return it == by_interface_.end() ? kEmptyNames : it->second;
}

const std::vector<std::string>& ExtentIndex::extents_with_signature(
    const std::string& signature) const {
  auto it = by_signature_.find(signature);
  return it == by_signature_.end() ? kEmptyNames : it->second;
}

const std::string& ExtentIndex::signature_of_wrapper(
    const std::string& wrapper) const {
  auto it = wrapper_signature_.find(wrapper);
  return it == wrapper_signature_.end() ? kEmptySignature : it->second;
}

}  // namespace disco::fedcat
