#include "fedcat/mediator_source.hpp"

#include <utility>
#include <vector>

#include "algebra/to_oql.hpp"
#include "common/error.hpp"
#include "core/mediator.hpp"
#include "fedcat/boundary.hpp"
#include "oql/printer.hpp"
#include "server/client.hpp"
#include "server/values.hpp"

namespace disco::fedcat {

namespace {

/// One daemon connection, serialized: server::Client is not thread-safe
/// and replies must pair with their requests.
class RemoteBackend {
 public:
  RemoteBackend(const std::string& host, uint16_t port, double deadline_s)
      : client_(host, port), deadline_s_(deadline_s) {}

  Answer query(const std::string& oql) {
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t id =
        client_.submit_id(oql, deadline_s_, /*subscribe=*/true);
    std::optional<server::Response> event = client_.wait_event(
        id, {server::FrameType::kComplete, server::FrameType::kQueryFailed},
        deadline_s_);
    if (!event.has_value()) {
      client_.cancel(id);
      throw ExecutionError("remote mediator did not complete within " +
                           std::to_string(deadline_s_) + "s: " + oql);
    }
    if (event->type == server::FrameType::kQueryFailed) {
      throw ExecutionError("remote mediator failed query: " + oql);
    }
    return Answer::complete_answer(
        server::json_to_value(event->payload.at("rows")), {});
  }

 private:
  std::mutex mutex_;
  server::Client client_;
  double deadline_s_;
};

}  // namespace

MediatorSource::MediatorSource(QueryFn query) : query_(std::move(query)) {}

std::shared_ptr<MediatorSource> MediatorSource::in_process(Mediator* remote) {
  internal_check(remote != nullptr, "MediatorSource needs a mediator");
  return std::shared_ptr<MediatorSource>(new MediatorSource(
      [remote](const std::string& oql) { return remote->query(oql); }));
}

std::shared_ptr<MediatorSource> MediatorSource::connect(
    const std::string& host, uint16_t port, double deadline_s) {
  auto backend = std::make_shared<RemoteBackend>(host, port, deadline_s);
  return std::shared_ptr<MediatorSource>(new MediatorSource(
      [backend](const std::string& oql) { return backend->query(oql); }));
}

grammar::Grammar MediatorSource::capabilities() const {
  return grammar::CapabilitySet{.get = true,
                                .project = true,
                                .select = true,
                                .join = true,
                                .compose = true}
      .to_grammar();
}

wrapper::SubmitResult MediatorSource::submit(
    const catalog::Repository& repository, const algebra::LogicalPtr& expr,
    const wrapper::BindingMap& bindings) {
  (void)repository;
  RenamedQuery renamed;
  try {
    renamed = rename_for_remote(expr, bindings);
  } catch (const ExecutionError& e) {
    return wrapper::SubmitResult::refused(e.what());
  }
  const std::string remote_oql =
      oql::to_oql(algebra::reconstruct(renamed.expr));
  {
    std::lock_guard<std::mutex> lock(last_oql_mutex_);
    last_oql_ = remote_oql;
  }

  Answer answer = query_(remote_oql);
  if (!answer.complete()) {
    throw ExecutionError(
        "remote mediator returned a partial answer for: " + remote_oql);
  }

  // Env-shaped results carry remote attribute names inside each
  // variable's row; rename them back into this mediator's name space.
  if (expr->op != algebra::LOp::Project) {
    return wrapper::SubmitResult::ok(
        rename_rows_to_mediator(answer.data(), renamed.var_maps));
  }
  return wrapper::SubmitResult::ok(answer.data());
}

}  // namespace disco::fedcat
