// Sharded extent index for federation-scale catalogs (src/fedcat/).
//
// The paper's title problem is scaling the *number* of heterogeneous
// sources. At 1,000–10,000 registered extents the planner must not walk
// the whole MetaExtent table per query: this index, built once per
// catalog epoch (see snapshot.hpp), shards the extents two ways:
//
//   * by interface — what `extents_of_type` resolves through (the
//     catalog itself keeps the authoritative per-interface index; this
//     one mirrors the counts for introspection), and
//   * by capability-grammar signature — extents whose wrappers advertise
//     the *same* grammar text form one shard. Every grammar consultation
//     the optimizer makes has an identical outcome across a shard, which
//     is what makes pushdown memoization (optimizer/) exact and lets
//     explain reports say "N extents across M capability shards".
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.hpp"
#include "wrapper/wrapper.hpp"

namespace disco::fedcat {

/// Wrapper name -> wrapper object; the mediator's binding table as it
/// exists inside one immutable snapshot.
using WrapperMap =
    std::unordered_map<std::string, std::shared_ptr<wrapper::Wrapper>>;

class ExtentIndex {
 public:
  ExtentIndex() = default;

  /// Builds the index over every extent in `catalog`. Wrapper objects
  /// missing from `wrappers` (programmatic setups that bind extents
  /// before wrappers) land in the "" signature shard instead of
  /// throwing — the index is an accelerator, not a validator.
  static ExtentIndex build(const catalog::Catalog& catalog,
                           const WrapperMap& wrappers);

  size_t total_extents() const { return total_extents_; }
  size_t interface_count() const { return by_interface_.size(); }
  /// Distinct capability-grammar signatures across all extents.
  size_t shard_count() const { return by_signature_.size(); }

  /// Extent names registered for exactly this interface (registration
  /// order). Empty vector for unknown interfaces.
  const std::vector<std::string>& extents_of_interface(
      const std::string& interface) const;
  /// Extent names whose wrapper advertises this grammar signature.
  const std::vector<std::string>& extents_with_signature(
      const std::string& signature) const;
  /// The grammar signature (Grammar::to_text) of a wrapper object, or ""
  /// when the wrapper is unknown to this snapshot.
  const std::string& signature_of_wrapper(const std::string& wrapper) const;

 private:
  size_t total_extents_ = 0;
  std::unordered_map<std::string, std::vector<std::string>> by_interface_;
  std::unordered_map<std::string, std::vector<std::string>> by_signature_;
  std::unordered_map<std::string, std::string> wrapper_signature_;
};

}  // namespace disco::fedcat
