#include "fedcat/boundary.hpp"

#include "common/error.hpp"
#include "oql/printer.hpp"

namespace disco::fedcat {

namespace {

using algebra::LogicalPtr;
using algebra::LOp;

/// Rewrites var.attr paths into the remote attribute names.
class Renamer {
 public:
  explicit Renamer(const wrapper::BindingMap& bindings)
      : bindings_(bindings) {}

  LogicalPtr rename(const LogicalPtr& node) {
    switch (node->op) {
      case LOp::Get: {
        const wrapper::ExtentBinding& binding = binding_of(node->extent);
        var_maps_[node->var] = binding.map;
        return algebra::get(binding.source_relation, node->var);
      }
      case LOp::Filter: {
        LogicalPtr child = rename(node->child);
        return algebra::filter(child, rename_expr(node->predicate));
      }
      case LOp::Project: {
        LogicalPtr child = rename(node->child);
        return algebra::project(child, rename_expr(node->projection),
                                node->distinct);
      }
      case LOp::Join: {
        LogicalPtr left = rename(node->left);
        LogicalPtr right = rename(node->right);
        return algebra::join(left, right,
                             node->predicate == nullptr
                                 ? nullptr
                                 : rename_expr(node->predicate));
      }
      default:
        throw ExecutionError(
            std::string("operator '") + to_string(node->op) +
            "' cannot cross the mediator-wrapper boundary");
    }
  }

  std::unordered_map<std::string, const catalog::TypeMap*> take_var_maps() {
    return std::move(var_maps_);
  }

 private:
  const wrapper::ExtentBinding& binding_of(const std::string& extent) const {
    auto it = bindings_.find(extent);
    internal_check(it != bindings_.end(),
                   "missing binding for extent '" + extent + "'");
    return it->second;
  }

  oql::ExprPtr rename_expr(const oql::ExprPtr& expr) {
    using oql::ExprKind;
    switch (expr->kind) {
      case ExprKind::Literal:
      case ExprKind::Ident:
        return expr;
      case ExprKind::Path: {
        if (expr->child->kind == ExprKind::Ident) {
          auto it = var_maps_.find(expr->child->name);
          if (it != var_maps_.end()) {
            return oql::path(expr->child,
                             it->second->to_source_attribute(expr->name));
          }
        }
        return oql::path(rename_expr(expr->child), expr->name);
      }
      case ExprKind::Unary:
        return oql::unary(expr->unary_op, rename_expr(expr->child));
      case ExprKind::Binary:
        return oql::binary(expr->binary_op, rename_expr(expr->left),
                           rename_expr(expr->right));
      case ExprKind::StructCtor: {
        std::vector<std::pair<std::string, oql::ExprPtr>> fields;
        for (const auto& [name, value] : expr->struct_fields) {
          fields.emplace_back(name, rename_expr(value));
        }
        return oql::struct_ctor(std::move(fields));
      }
      default:
        throw ExecutionError("expression '" + oql::to_oql(expr) +
                             "' cannot cross the mediator-wrapper boundary");
    }
  }

  const wrapper::BindingMap& bindings_;
  std::unordered_map<std::string, const catalog::TypeMap*> var_maps_;
};

}  // namespace

RenamedQuery rename_for_remote(const algebra::LogicalPtr& expr,
                               const wrapper::BindingMap& bindings) {
  Renamer renamer(bindings);
  RenamedQuery out;
  out.expr = renamer.rename(expr);
  out.var_maps = renamer.take_var_maps();
  return out;
}

Value rename_rows_to_mediator(
    const Value& data,
    const std::unordered_map<std::string, const catalog::TypeMap*>&
        var_maps) {
  std::vector<Value> renamed_rows;
  renamed_rows.reserve(data.size());
  for (const Value& env : data.items()) {
    std::vector<std::pair<std::string, Value>> fields;
    for (const auto& [var, row] : env.fields()) {
      auto it = var_maps.find(var);
      internal_check(it != var_maps.end(),
                     "unknown variable in remote answer");
      fields.emplace_back(var, it->second->rename_row_to_mediator(row));
    }
    renamed_rows.push_back(Value::strct(std::move(fields)));
  }
  return Value::bag(std::move(renamed_rows));
}

}  // namespace disco::fedcat
