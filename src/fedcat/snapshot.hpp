// Epoch-based catalog snapshots (src/fedcat/): RCU-style swap of the
// mediator's internal database, so administration is concurrent with
// queries.
//
// The original design enforced "define the federation first, then serve
// traffic": admin calls threw while any query was in flight. A
// federation of thousands of sources cannot stop the world to admit
// source N+1. Instead, every admin operation builds a *new* immutable
// FederationSnapshot (catalog + wrapper bindings + extent index) and
// atomically publishes it with the next generation number. Queries pin
// the snapshot current at their start and run against it to completion —
// they never observe a half-applied registration, and registration never
// blocks on them. An old epoch is retired when its last query drains
// (the shared_ptr refcount is the drain count; a custom deleter ticks
// the retirement counter).
//
// Update transactionality: the mutation function runs on a private copy;
// if it throws, nothing is published and the current epoch stands. The
// UpdateScope it returns names what changed, so cache invalidation can
// be scoped to the affected repositories instead of flushing the world.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"
#include "fedcat/extent_index.hpp"
#include "wrapper/wrapper.hpp"

namespace disco::fedcat {

/// One immutable epoch of the federation: never modified after publish.
struct FederationSnapshot {
  uint64_t epoch = 0;
  catalog::Catalog catalog;
  WrapperMap wrappers;
  ExtentIndex index;

  /// Resolves a wrapper object; throws CatalogError for unknown names.
  wrapper::Wrapper* wrapper_by_name(const std::string& name) const;
};

using SnapshotPtr = std::shared_ptr<const FederationSnapshot>;

/// What one admin update touched — drives epoch-scoped invalidation.
struct UpdateScope {
  /// Interface/type definitions changed: query *semantics* moved, every
  /// derived artifact (cached submits, plans) is suspect.
  bool types_changed = false;
  /// Repositories whose extent set changed (defines/drops). Cached
  /// submit results for these repositories are invalidated; everything
  /// else survives the registration.
  std::vector<std::string> repositories;

  void touch_repository(const std::string& name);
};

class CatalogManager {
 public:
  CatalogManager();

  /// The current epoch, pinned: holding the returned pointer keeps this
  /// epoch (catalog, wrappers, index) alive no matter how many admin
  /// swaps happen meanwhile. One snapshot() per query is the contract.
  SnapshotPtr snapshot() const;

  /// Reference into the *current* snapshot, for single-threaded
  /// introspection (tests, benches, explain). Stable only until the next
  /// admin call — code that may race with administration must pin a
  /// snapshot() instead.
  const catalog::Catalog& current_catalog() const;

  /// Mutable state handed to update functions; starts as a copy of the
  /// current epoch.
  struct Draft {
    catalog::Catalog catalog;
    WrapperMap wrappers;
    UpdateScope scope;
  };

  /// Runs `fn` on a draft copy of the current epoch and publishes the
  /// result as epoch N+1. Serializes concurrent updaters (blocking, not
  /// throwing); never blocks or is blocked by queries. If `fn` throws,
  /// no swap happens and the exception propagates. Returns the scope the
  /// update declared.
  UpdateScope update(const std::function<void(Draft&)>& fn);

  // -- epoch accounting -------------------------------------------------------
  uint64_t epoch() const;
  /// Snapshots currently alive: the published one plus every old epoch
  /// still pinned by a draining query.
  size_t live_epochs() const;
  /// Epochs whose last reference has drained.
  uint64_t retired_epochs() const;

 private:
  SnapshotPtr publish(uint64_t epoch, catalog::Catalog catalog,
                      WrapperMap wrappers);

  struct EpochCounters {
    std::atomic<uint64_t> created{0};
    std::atomic<uint64_t> retired{0};
  };
  std::shared_ptr<EpochCounters> counters_;

  /// Guards the current_ pointer (reads copy the shared_ptr; writes swap
  /// it). Held for pointer copies only — never across catalog work.
  mutable std::mutex snap_mutex_;
  SnapshotPtr current_;

  /// Serializes updaters: drafts are built outside snap_mutex_, so two
  /// concurrent updates must not both fork the same parent epoch.
  std::mutex admin_mutex_;
};

}  // namespace disco::fedcat
