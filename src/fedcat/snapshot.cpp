#include "fedcat/snapshot.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace disco::fedcat {

wrapper::Wrapper* FederationSnapshot::wrapper_by_name(
    const std::string& name) const {
  auto it = wrappers.find(name);
  if (it == wrappers.end()) {
    throw CatalogError("unknown wrapper '" + name + "'");
  }
  return it->second.get();
}

void UpdateScope::touch_repository(const std::string& name) {
  if (std::find(repositories.begin(), repositories.end(), name) ==
      repositories.end()) {
    repositories.push_back(name);
  }
}

CatalogManager::CatalogManager()
    : counters_(std::make_shared<EpochCounters>()) {
  current_ = publish(0, catalog::Catalog{}, WrapperMap{});
}

SnapshotPtr CatalogManager::snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mutex_);
  return current_;
}

const catalog::Catalog& CatalogManager::current_catalog() const {
  std::lock_guard<std::mutex> lock(snap_mutex_);
  return current_->catalog;
}

UpdateScope CatalogManager::update(const std::function<void(Draft&)>& fn) {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  SnapshotPtr parent = snapshot();
  Draft draft;
  draft.catalog = parent->catalog;
  draft.wrappers = parent->wrappers;
  fn(draft);  // a throw here publishes nothing: the parent epoch stands
  SnapshotPtr next = publish(parent->epoch + 1, std::move(draft.catalog),
                             std::move(draft.wrappers));
  {
    std::lock_guard<std::mutex> lock(snap_mutex_);
    current_ = std::move(next);
  }
  return std::move(draft.scope);
}

uint64_t CatalogManager::epoch() const { return snapshot()->epoch; }

size_t CatalogManager::live_epochs() const {
  const uint64_t created = counters_->created.load(std::memory_order_acquire);
  const uint64_t retired = counters_->retired.load(std::memory_order_acquire);
  return static_cast<size_t>(created - retired);
}

uint64_t CatalogManager::retired_epochs() const {
  return counters_->retired.load(std::memory_order_acquire);
}

SnapshotPtr CatalogManager::publish(uint64_t epoch, catalog::Catalog catalog,
                                    WrapperMap wrappers) {
  auto* snap = new FederationSnapshot{};
  snap->epoch = epoch;
  snap->catalog = std::move(catalog);
  snap->wrappers = std::move(wrappers);
  snap->index = ExtentIndex::build(snap->catalog, snap->wrappers);
  counters_->created.fetch_add(1, std::memory_order_acq_rel);
  // The deleter holds the counters (not `this`): epochs may outlive the
  // manager and still retire cleanly.
  std::shared_ptr<EpochCounters> counters = counters_;
  return SnapshotPtr(snap, [counters](const FederationSnapshot* p) {
    counters->retired.fetch_add(1, std::memory_order_acq_rel);
    delete p;
  });
}

}  // namespace disco::fedcat
