#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace disco::obs {

namespace {

const std::string kEmpty;

/// Formats a double with enough precision for microsecond timestamps
/// without trailing-zero noise.
std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

const std::string& Span::tag(std::string_view key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return v;
  }
  return kEmpty;
}

bool Span::has_tag(std::string_view key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return true;
  }
  return false;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Trace::Trace(std::string query_text)
    : query_(std::move(query_text)),
      epoch_(std::chrono::steady_clock::now()) {
  // A typical traced query records a handful of pipeline spans plus one
  // exec span (and a few tags) per source call; reserving up front keeps
  // the hot begin/tag path free of vector regrowth.
  spans_.reserve(32);
  events_.reserve(64);
}

double Trace::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

uint64_t Trace::thread_index_locked() {
  const auto tid = std::this_thread::get_id();
  auto it = threads_.find(tid);
  if (it != threads_.end()) return it->second;
  const uint64_t index = threads_.size() + 1;
  threads_.emplace(tid, index);
  return index;
}

uint64_t Trace::begin(uint64_t parent, std::string_view name,
                      std::string_view category) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Build the span in place; short literal names land in SSO buffers,
  // so the common case allocates nothing per span.
  Span& span = spans_.emplace_back();
  span.id = next_id_++;
  span.parent = parent;
  span.name = name;
  span.category = category;
  // Read the clock under the lock: event order == timestamp order.
  span.start_s = now_s();
  span.tid = thread_index_locked();
  events_.push_back({Event::Phase::Begin, spans_.size() - 1, span.start_s});
  return span.id;
}

void Trace::end(uint64_t span_id) {
  if (span_id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // Ids are assigned sequentially from 1, so id k lives at index k-1.
  if (span_id > spans_.size()) return;
  Span& span = spans_[span_id - 1];
  if (span.instant || span.end_s >= 0) return;  // already closed
  span.end_s = now_s();
  events_.push_back({Event::Phase::End, span_id - 1, span.end_s});
}

uint64_t Trace::instant(uint64_t parent, std::string_view name,
                        std::string_view category) {
  std::lock_guard<std::mutex> lock(mutex_);
  Span& span = spans_.emplace_back();
  span.id = next_id_++;
  span.parent = parent;
  span.name = name;
  span.category = category;
  span.start_s = now_s();
  span.end_s = span.start_s;
  span.tid = thread_index_locked();
  span.instant = true;
  events_.push_back({Event::Phase::Instant, spans_.size() - 1, span.start_s});
  return span.id;
}

void Trace::tag(uint64_t span_id, std::string_view key, std::string value) {
  if (span_id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (span_id > spans_.size()) return;
  auto& tags = spans_[span_id - 1].tags;
  // Exec spans carry ~6 tags; one up-front reservation beats doubling.
  if (tags.empty()) tags.reserve(8);
  tags.emplace_back(std::string(key), std::move(value));
}

void Trace::tag(uint64_t span_id, std::string_view key, double value) {
  tag(span_id, key, format_double(value));
}

void Trace::tag(uint64_t span_id, std::string_view key, uint64_t value) {
  tag(span_id, key, std::to_string(value));
}

std::vector<Span> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<Span> Trace::spans_named(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  for (const Span& span : spans_) {
    if (span.name == name) out.push_back(span);
  }
  return out;
}

bool Trace::find_span(std::string_view name, Span* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Span& span : spans_) {
    if (span.name == name) {
      if (out != nullptr) *out = span;
      return true;
    }
  }
  return false;
}

std::string Trace::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"query\":\""
      << json_escape(query_) << "\"},\"traceEvents\":[";
  bool first = true;
  auto emit_common = [&](const Span& span, const char* phase, double ts_s) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
        << json_escape(span.category) << "\",\"ph\":\"" << phase
        << "\",\"ts\":" << format_double(ts_s * 1e6)
        << ",\"pid\":1,\"tid\":" << span.tid;
  };
  auto emit_args = [&](const Span& span) {
    out << ",\"args\":{";
    bool first_tag = true;
    for (const auto& [key, value] : span.tags) {
      if (!first_tag) out << ',';
      first_tag = false;
      out << '"' << json_escape(key) << "\":\"" << json_escape(value)
          << '"';
    }
    out << '}';
  };
  for (const Event& event : events_) {
    const Span& span = spans_[event.span_index];
    switch (event.phase) {
      case Event::Phase::Begin:
        emit_common(span, "B", event.ts_s);
        emit_args(span);
        break;
      case Event::Phase::End:
        emit_common(span, "E", event.ts_s);
        break;
      case Event::Phase::Instant:
        emit_common(span, "i", event.ts_s);
        out << ",\"s\":\"t\"";
        emit_args(span);
        break;
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

std::string Trace::to_compact_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Children in creation order under each parent.
  std::unordered_map<uint64_t, std::vector<size_t>> children;
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent == 0) {
      roots.push_back(i);
    } else {
      children[spans_[i].parent].push_back(i);
    }
  }
  std::ostringstream out;
  // Iterative emitter (explicit stack) so deep trees can't overflow.
  struct Frame {
    size_t index;
    size_t next_child = 0;
  };
  auto open_span = [&](const Span& span) {
    out << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
        << json_escape(span.category)
        << "\",\"start_s\":" << format_double(span.start_s)
        << ",\"dur_s\":" << format_double(span.duration_s());
    if (span.instant) out << ",\"instant\":true";
    if (!span.tags.empty()) {
      out << ",\"tags\":{";
      bool first_tag = true;
      for (const auto& [key, value] : span.tags) {
        if (!first_tag) out << ',';
        first_tag = false;
        out << '"' << json_escape(key) << "\":\"" << json_escape(value)
            << '"';
      }
      out << '}';
    }
    out << ",\"children\":[";
  };
  out << "{\"query\":\"" << json_escape(query_) << "\",\"spans\":[";
  bool first_root = true;
  for (const size_t root : roots) {
    if (!first_root) out << ',';
    first_root = false;
    std::vector<Frame> stack;
    stack.push_back({root});
    open_span(spans_[root]);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      auto it = children.find(spans_[frame.index].id);
      const std::vector<size_t>* kids =
          it == children.end() ? nullptr : &it->second;
      if (kids != nullptr && frame.next_child < kids->size()) {
        if (frame.next_child > 0) out << ',';
        const size_t child = (*kids)[frame.next_child++];
        open_span(spans_[child]);
        stack.push_back({child});
      } else {
        out << "]}";
        stack.pop_back();
      }
    }
  }
  out << "]}";
  return out.str();
}

}  // namespace disco::obs
