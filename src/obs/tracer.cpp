#include "obs/tracer.hpp"

namespace disco::obs {

Tracer::Tracer(ObsOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &Registry::global()) {}

std::shared_ptr<Trace> Tracer::start_query(std::string query_text) {
  return std::make_shared<Trace>(std::move(query_text));
}

void Tracer::finish(std::shared_ptr<Trace> trace) {
  if (trace == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++finished_;
  if (options_.keep_traces == 0) return;
  ring_.push_back(std::move(trace));
  while (ring_.size() > options_.keep_traces) ring_.pop_front();
}

std::shared_ptr<const Trace> Tracer::last() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.empty() ? nullptr : ring_.back();
}

std::vector<std::shared_ptr<const Trace>> Tracer::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

uint64_t Tracer::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

}  // namespace disco::obs
