#include "obs/registry.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/trace.hpp"  // json_escape

namespace disco::obs {

namespace {

uint64_t to_micro(double value) {
  if (value <= 0) return 0;
  const double micro = value * 1e6;
  if (micro >= 9e18) return static_cast<uint64_t>(9e18);
  return static_cast<uint64_t>(micro + 0.5);
}

size_t bucket_for(uint64_t micro) {
  if (micro == 0) return 0;
  size_t bucket = 0;
  while (micro > 1 && bucket + 1 < Histogram::kBuckets) {
    micro >>= 1;
    ++bucket;
  }
  return bucket;
}

std::string format_double(double value) {
  // %g renders inf/nan as bare words, which is invalid JSON; snapshots
  // flow straight into the STATS wire frames, so clamp here.
  if (!std::isfinite(value)) return value > 0 ? "1e308" : "-1e308";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

void fetch_min(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t seen = slot.load(std::memory_order_relaxed);
  while (value < seen &&
         !slot.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

void fetch_max(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t seen = slot.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------- Histogram --

void Histogram::observe(double value) {
  const uint64_t micro = to_micro(value);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micro_.fetch_add(micro, std::memory_order_relaxed);
  fetch_min(min_micro_, micro);
  fetch_max(max_micro_, micro);
  buckets_[bucket_for(micro)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::bucket_bound(size_t index) {
  return static_cast<double>(uint64_t{1} << (index + 1)) * 1e-6;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = static_cast<double>(sum_micro_.load(std::memory_order_relaxed)) *
             1e-6;
  const uint64_t lo = min_micro_.load(std::memory_order_relaxed);
  snap.min = lo == UINT64_MAX ? 0 : static_cast<double>(lo) * 1e-6;
  snap.max =
      static_cast<double>(max_micro_.load(std::memory_order_relaxed)) * 1e-6;
  snap.buckets.resize(kBuckets);
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_micro_.store(0, std::memory_order_relaxed);
  min_micro_.store(UINT64_MAX, std::memory_order_relaxed);
  max_micro_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return bucket_bound(i);
  }
  return max;
}

// ----------------------------------------------------------------- Registry --

Counter& Registry::counter(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->snapshot();
  }
  return snap;
}

void Registry::reset() {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

// --------------------------------------------------------- RegistrySnapshot --

bool RegistrySnapshot::has(const std::string& name) const {
  return counters.count(name) > 0 || histograms.count(name) > 0;
}

std::string RegistrySnapshot::to_string() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << " = " << value << '\n';
  }
  for (const auto& [name, h] : histograms) {
    out << name << " = {count " << h.count << ", mean "
        << format_double(h.mean()) << ", p50 "
        << format_double(h.quantile(0.5)) << ", p99 "
        << format_double(h.quantile(0.99)) << ", max "
        << format_double(h.max) << "}\n";
  }
  return out.str();
}

std::string RegistrySnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << format_double(h.sum)
        << ",\"mean\":" << format_double(h.mean())
        << ",\"min\":" << format_double(h.min)
        << ",\"max\":" << format_double(h.max)
        << ",\"p50\":" << format_double(h.quantile(0.5))
        << ",\"p90\":" << format_double(h.quantile(0.9))
        << ",\"p99\":" << format_double(h.quantile(0.99)) << '}';
  }
  out << "}}";
  return out.str();
}

namespace {

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ScopedRate::ScopedRate(Registry* registry, const char* name)
    : registry_(registry), name_(name) {
  if (registry_ != nullptr) start_ns_ = now_ns();
}

ScopedRate::~ScopedRate() {
  if (registry_ == nullptr) return;
  const std::string prefix(name_);
  registry_->counter(prefix + ".rows").add(rows_);
  registry_->counter(prefix + ".ns").add(now_ns() - start_ns_);
}

}  // namespace disco::obs
