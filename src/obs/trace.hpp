// Per-query trace trees (src/obs/).
//
// A Trace records what one query *actually did*: a tree of timed spans
// (parse, typecheck, optimize, execute, one per exec dispatch, residual
// construction, ...) with string tags (repository, attempts, sim vs wall
// latency, pushdown expression, outcome). The mediator opens a Trace per
// query when Options::obs.enabled and threads an ObsContext — a
// {Trace*, parent span id} pair — down through the optimizer, the
// physical runtime, the parallel dispatcher and the session layer. Every
// instrumentation site guards on a single pointer check, so the disabled
// path costs one branch.
//
// Output forms:
//   * to_json()          — Chrome trace format (chrome://tracing /
//                          Perfetto loadable): paired B/E duration events
//                          plus "i" instant events, ts in microseconds.
//   * to_compact_json()  — a nested {name, cat, start/dur, tags,
//                          children} tree for programmatic consumers.
//
// Thread safety: begin/end/tag/instant may be called from any thread
// (exec spans are recorded on dispatcher pool threads). All mutation sits
// under one mutex; the timestamp is read inside the critical section, so
// event sequence order and timestamp order always agree — to_json()
// output is monotone by construction.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace disco::obs {

/// One node of the trace tree. `instant` spans are point events (retry,
/// short-circuit) with start_s == end_s.
struct Span {
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = root (no parent)
  std::string name;
  std::string category;  ///< "mediator", "optimizer", "exec", "session"
  double start_s = 0;    ///< seconds since the trace epoch
  double end_s = -1;     ///< < 0 while still open
  uint64_t tid = 0;      ///< per-trace dense thread index
  bool instant = false;
  std::vector<std::pair<std::string, std::string>> tags;

  double duration_s() const { return end_s < 0 ? 0 : end_s - start_s; }
  /// First value recorded for `key`, or "" when absent.
  const std::string& tag(std::string_view key) const;
  bool has_tag(std::string_view key) const;
};

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(const std::string& text);

class Trace {
 public:
  explicit Trace(std::string query_text);

  const std::string& query() const { return query_; }

  /// Opens a span under `parent` (0 = top level); returns its id (> 0).
  /// Names and categories are string_views (almost always literals), so
  /// call sites never build a temporary std::string just to name a span.
  uint64_t begin(uint64_t parent, std::string_view name,
                 std::string_view category);
  /// Closes a span. Ending twice or ending an unknown id is ignored.
  void end(uint64_t span_id);
  /// Records a point event; returns its id (tags may still be attached).
  uint64_t instant(uint64_t parent, std::string_view name,
                   std::string_view category);

  /// Keys are string_view (literals); values keep the std::string
  /// overload so dynamically built strings move straight into the tag.
  void tag(uint64_t span_id, std::string_view key, std::string value);
  void tag(uint64_t span_id, std::string_view key, double value);
  void tag(uint64_t span_id, std::string_view key, uint64_t value);

  /// Seconds since the trace epoch (steady clock).
  double now_s() const;

  /// Snapshot of all spans recorded so far, in creation order.
  std::vector<Span> spans() const;
  /// Spans with the given name, in creation order.
  std::vector<Span> spans_named(std::string_view name) const;
  /// The first span with the given name, if any.
  bool find_span(std::string_view name, Span* out) const;

  /// Chrome trace format (the acceptance surface: loads in
  /// chrome://tracing). Events are emitted in recording order; their
  /// timestamps are non-decreasing by construction.
  std::string to_json() const;
  /// Compact nested tree form.
  std::string to_compact_json() const;

 private:
  struct Event {
    enum class Phase { Begin, End, Instant } phase;
    size_t span_index;  ///< into spans_
    double ts_s;
  };

  uint64_t thread_index_locked();

  std::string query_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::vector<Event> events_;
  std::unordered_map<std::thread::id, uint64_t> threads_;
  uint64_t next_id_ = 1;
};

/// The {trace, parent span} pair threaded through the query pipeline.
/// Default-constructed means "tracing off": every instrumentation site
/// checks `if (obs)` — one pointer test — before doing any work.
struct ObsContext {
  Trace* trace = nullptr;
  uint64_t span = 0;  ///< parent span for anything recorded below here

  explicit operator bool() const { return trace != nullptr; }
  /// The same trace re-rooted under `span_id`.
  ObsContext under(uint64_t span_id) const { return {trace, span_id}; }
};

/// RAII span: begins on construction (no-op when the context is off),
/// ends on destruction. Movable so it can cross scopes.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  /// string_view name/category: when tracing is off, constructing the
  /// span allocates nothing at all.
  ScopedSpan(ObsContext obs, std::string_view name, std::string_view category)
      : trace_(obs.trace) {
    if (trace_ != nullptr) {
      id_ = trace_->begin(obs.span, name, category);
    }
  }
  ScopedSpan(ScopedSpan&& other) noexcept
      : trace_(std::exchange(other.trace_, nullptr)),
        id_(std::exchange(other.id_, 0)) {}
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      finish();
      trace_ = std::exchange(other.trace_, nullptr);
      id_ = std::exchange(other.id_, 0);
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { finish(); }

  explicit operator bool() const { return trace_ != nullptr; }
  uint64_t id() const { return id_; }
  /// Context for children of this span.
  ObsContext context() const { return {trace_, id_}; }

  template <typename V>
  void tag(std::string_view key, V value) {
    if (trace_ != nullptr) trace_->tag(id_, key, std::move(value));
  }

  /// Ends the span now (idempotent).
  void finish() {
    if (trace_ != nullptr) {
      trace_->end(id_);
      trace_ = nullptr;
    }
  }

 private:
  Trace* trace_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace disco::obs
