// Tracer: per-query trace lifecycle + retention (src/obs/).
//
// The mediator owns one Tracer (allocated only when Options::obs.enabled;
// a null tracer pointer *is* the disabled path). start_query() mints a
// Trace; the mediator threads its ObsContext through the pipeline and
// calls finish() at the end, which retains the trace in a small ring
// buffer for later inspection (Mediator::last_trace / recent_traces).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace disco::obs {

struct ObsOptions {
  /// Master switch. When false the mediator allocates no tracer and
  /// every instrumentation site reduces to one null-pointer test.
  bool enabled = false;
  /// Finished traces retained for inspection (oldest evicted first).
  size_t keep_traces = 16;
  /// Counter/histogram sink; nullptr = Registry::global().
  Registry* registry = nullptr;
};

class Tracer {
 public:
  explicit Tracer(ObsOptions options);

  const ObsOptions& options() const { return options_; }
  Registry& registry() { return *registry_; }

  /// Mints a new trace for one query.
  std::shared_ptr<Trace> start_query(std::string query_text);

  /// Retains a finished trace in the ring buffer.
  void finish(std::shared_ptr<Trace> trace);

  /// Most recently finished trace (nullptr when none).
  std::shared_ptr<const Trace> last() const;
  /// Finished traces, oldest first.
  std::vector<std::shared_ptr<const Trace>> recent() const;
  /// Queries traced since construction (finished count).
  uint64_t finished() const;

 private:
  ObsOptions options_;
  Registry* registry_;
  mutable std::mutex mutex_;
  std::deque<std::shared_ptr<const Trace>> ring_;
  uint64_t finished_ = 0;
};

}  // namespace disco::obs
