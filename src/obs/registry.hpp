// Process-wide named counters & histograms (src/obs/).
//
// One Registry unifies every subsystem's statistics behind a single
// consistent snapshot: exec::Metrics folds its totals in, the session
// health tracker contributes per-source availability, and the mediator
// records per-stage latency histograms. Instruments are get-or-create by
// name and live for the registry's lifetime, so callers may cache the
// returned reference and update it lock-free (instruments are atomics;
// the registry lock is only taken on first lookup and on snapshot).
//
// Naming convention: dotted lowercase paths, subsystem first —
// "mediator.queries", "exec.rows", "session.resubmissions",
// "stage.optimize.seconds" (histogram).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace disco::obs {

/// Monotone (between resets) additive counter. Lock-free.
class Counter {
 public:
  void add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Lock-free log-scale histogram for non-negative values (latencies in
/// seconds, row counts). Values are bucketed by the base-2 exponent of
/// the value expressed in microunits (1e-6), covering ~1e-6 .. ~4e6 with
/// one bucket per octave.
class Histogram {
 public:
  static constexpr size_t kBuckets = 44;

  void observe(double value);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::vector<uint64_t> buckets;  ///< kBuckets entries

    double mean() const { return count == 0 ? 0 : sum / count; }
    /// Approximate quantile (bucket upper bound), q in [0, 1].
    double quantile(double q) const;
  };

  Snapshot snapshot() const;
  void reset();

  /// Upper bound (in value units) of bucket `index`.
  static double bucket_bound(size_t index);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micro_{0};  ///< sum in microunits
  std::atomic<uint64_t> min_micro_{UINT64_MAX};
  std::atomic<uint64_t> max_micro_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// A consistent snapshot of every instrument in a registry.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, Histogram::Snapshot> histograms;

  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  bool has(const std::string& name) const;
  std::string to_string() const;
  std::string to_json() const;
};

class Registry {
 public:
  /// Get-or-create. The returned reference is stable for the registry's
  /// lifetime; cache it on hot paths.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  RegistrySnapshot snapshot() const;
  /// Zeroes every instrument (instruments stay registered).
  void reset();

  /// The process-wide default registry.
  static Registry& global();

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Throughput recorder for one operator invocation: on destruction adds
/// `<name>.rows` and `<name>.ns` counters (rows / wall nanoseconds, from
/// which rows-per-second is `rows / (ns * 1e-9)`). Wall time is metrics
/// only — it never feeds the virtual clock, so deterministic virtual-time
/// runs stay deterministic. A null registry makes it a no-op.
class ScopedRate {
 public:
  ScopedRate(Registry* registry, const char* name);
  ~ScopedRate();
  ScopedRate(const ScopedRate&) = delete;
  ScopedRate& operator=(const ScopedRate&) = delete;

  void add_rows(uint64_t rows) { rows_ += rows; }

 private:
  Registry* registry_;
  const char* name_;
  uint64_t rows_ = 0;
  uint64_t start_ns_ = 0;
};

}  // namespace disco::obs
