#include "types/type_registry.hpp"

#include "common/error.hpp"

namespace disco {

const char* to_string(ScalarType type) {
  switch (type) {
    case ScalarType::Bool:
      return "Boolean";
    case ScalarType::Short:
      return "Short";
    case ScalarType::Long:
      return "Long";
    case ScalarType::Float:
      return "Float";
    case ScalarType::Double:
      return "Double";
    case ScalarType::String:
      return "String";
    case ScalarType::Json:
      return "Json";
  }
  return "Unknown";
}

std::optional<ScalarType> scalar_type_from_name(std::string_view name) {
  if (name == "Boolean" || name == "Bool") return ScalarType::Bool;
  if (name == "Short") return ScalarType::Short;
  if (name == "Long") return ScalarType::Long;
  if (name == "Float") return ScalarType::Float;
  if (name == "Double") return ScalarType::Double;
  if (name == "String") return ScalarType::String;
  if (name == "Json") return ScalarType::Json;
  return std::nullopt;
}

bool value_conforms(const Value& value, ScalarType type) {
  if (value.is_null()) return true;
  switch (type) {
    case ScalarType::Bool:
      return value.kind() == ValueKind::Bool;
    case ScalarType::Short:
    case ScalarType::Long:
      return value.kind() == ValueKind::Int;
    case ScalarType::Float:
    case ScalarType::Double:
      return value.is_numeric();
    case ScalarType::String:
      return value.kind() == ValueKind::String;
    case ScalarType::Json:
      return true;  // any nested shape inhabits Json
  }
  return false;
}

void TypeRegistry::define(InterfaceType type) {
  if (types_.contains(type.name)) {
    throw CatalogError("type '" + type.name + "' is already defined");
  }
  if (!type.super.empty() && !types_.contains(type.super)) {
    throw CatalogError("supertype '" + type.super + "' of '" + type.name +
                       "' is not defined");
  }
  if (!type.super.empty()) {
    for (const Attribute& inherited : all_attributes(type.super)) {
      for (const Attribute& own : type.attributes) {
        if (own.name == inherited.name && own.type != inherited.type) {
          throw TypeError("attribute '" + own.name + "' of '" + type.name +
                          "' redefines inherited attribute with type " +
                          to_string(inherited.type));
        }
      }
    }
  }
  order_.push_back(type.name);
  types_.emplace(type.name, std::move(type));
}

bool TypeRegistry::contains(std::string_view name) const {
  return types_.contains(std::string(name));
}

const InterfaceType& TypeRegistry::get(std::string_view name) const {
  const InterfaceType* found = find(name);
  if (found == nullptr) {
    throw CatalogError("unknown type '" + std::string(name) + "'");
  }
  return *found;
}

const InterfaceType* TypeRegistry::find(std::string_view name) const {
  auto it = types_.find(std::string(name));
  return it == types_.end() ? nullptr : &it->second;
}

std::vector<Attribute> TypeRegistry::all_attributes(
    std::string_view name) const {
  const InterfaceType& type = get(name);
  std::vector<Attribute> out;
  if (!type.super.empty()) {
    out = all_attributes(type.super);
  }
  for (const Attribute& attr : type.attributes) {
    bool overridden = false;
    for (const Attribute& existing : out) {
      if (existing.name == attr.name) {
        overridden = true;
        break;
      }
    }
    if (!overridden) out.push_back(attr);
  }
  return out;
}

bool TypeRegistry::is_subtype_of(std::string_view sub,
                                 std::string_view super) const {
  std::string current(sub);
  while (!current.empty()) {
    if (current == super) return true;
    current = get(current).super;
  }
  return false;
}

std::vector<std::string> TypeRegistry::with_subtypes(
    std::string_view name) const {
  get(name);  // validate existence
  std::vector<std::string> out;
  for (const std::string& candidate : order_) {
    if (is_subtype_of(candidate, name)) out.push_back(candidate);
  }
  return out;
}

const InterfaceType* TypeRegistry::type_for_implicit_extent(
    std::string_view extent_name) const {
  for (const std::string& name : order_) {
    const InterfaceType& type = types_.at(name);
    if (!type.implicit_extent.empty() && type.implicit_extent == extent_name) {
      return &type;
    }
  }
  return nullptr;
}

void TypeRegistry::check_row(std::string_view type_name,
                             const Value& row) const {
  if (row.kind() != ValueKind::Struct) {
    throw TypeError("object of type '" + std::string(type_name) +
                    "' must be a struct, got " + to_string(row.kind()));
  }
  for (const Attribute& attr : all_attributes(type_name)) {
    const Value* field = row.find_field(attr.name);
    if (field == nullptr) {
      throw TypeError("object of type '" + std::string(type_name) +
                      "' is missing attribute '" + attr.name + "'");
    }
    if (!value_conforms(*field, attr.type)) {
      throw TypeError("attribute '" + attr.name + "' of type '" +
                      std::string(type_name) + "' expects " +
                      to_string(attr.type) + ", got " +
                      to_string(field->kind()));
    }
  }
}

}  // namespace disco
