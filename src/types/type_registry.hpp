// Mediator interface types (§2 of the paper).
//
// An InterfaceType is what the DBA declares with ODL:
//
//   interface Person (extent person) {
//     attribute String name;
//     attribute Short salary; };
//
// DISCO extends ODMG with *multiple extents per interface* — the extents
// themselves live in the catalog (catalog/catalog.hpp); the type registry
// only knows the subtype lattice, attributes, and the optional implicit
// extent name, plus the `Person*` subtype-closure resolution (§2.2.1).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "value/value.hpp"

namespace disco {

/// Scalar attribute types from ODMG ODL. Short/Long both map to Int values;
/// Float/Double to Double values. Json is the semi-structured escape
/// hatch: an attribute whose value may be any nested shape (structs,
/// lists, scalars — what a document source's wrapper flattens out of a
/// JSON document). Every value conforms to Json, and the typechecker
/// allows arbitrary path descent past a Json attribute.
enum class ScalarType { Bool, Short, Long, Float, Double, String, Json };

const char* to_string(ScalarType type);

/// Parses an ODL scalar type name ("String", "Short", ...); case-sensitive
/// like ODMG ODL. Returns nullopt for unknown names.
std::optional<ScalarType> scalar_type_from_name(std::string_view name);

/// True when `value` inhabits `type` (Int widens into Float/Double; null is
/// a member of every type, modelling unavailable attribute data).
bool value_conforms(const Value& value, ScalarType type);

struct Attribute {
  std::string name;
  ScalarType type;
};

struct InterfaceType {
  std::string name;
  /// Direct supertype name; empty for root types.
  std::string super;
  /// Attributes declared on this interface (not the inherited ones).
  std::vector<Attribute> attributes;
  /// Implicit extent name from `interface T (extent e)`, empty if none.
  /// The implicit extent denotes the union of all registered extents of
  /// this type (§2.1: "define person as flatten(select x.e from x in
  /// metaextent where x.interface = Person)").
  std::string implicit_extent;
};

class TypeRegistry {
 public:
  /// Declares a type. Throws CatalogError on duplicate name or unknown
  /// supertype, and TypeError when an attribute redefines an inherited
  /// attribute with a different scalar type.
  void define(InterfaceType type);

  bool contains(std::string_view name) const;
  /// Throws CatalogError when absent.
  const InterfaceType& get(std::string_view name) const;
  const InterfaceType* find(std::string_view name) const;

  /// All attributes including inherited ones, supertype-first.
  std::vector<Attribute> all_attributes(std::string_view name) const;

  /// True when `sub` equals `super` or derives from it transitively.
  bool is_subtype_of(std::string_view sub, std::string_view super) const;

  /// The type itself followed by all transitive subtypes, in definition
  /// order. This is what `T*` (§2.2.1) ranges over.
  std::vector<std::string> with_subtypes(std::string_view name) const;

  /// Type that declares implicit extent `extent_name`, or nullptr.
  const InterfaceType* type_for_implicit_extent(
      std::string_view extent_name) const;

  /// Structural check: `row` must be a struct providing every attribute of
  /// the interface (inherited included) with a conforming value. Extra
  /// fields are tolerated (the projection discards them). Throws TypeError.
  void check_row(std::string_view type_name, const Value& row) const;

  std::vector<std::string> type_names() const { return order_; }

 private:
  std::unordered_map<std::string, InterfaceType> types_;
  std::vector<std::string> order_;
};

}  // namespace disco
