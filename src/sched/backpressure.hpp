// Per-connection backpressure for the mediator daemon (src/sched/).
//
// The QueryScheduler protects *sources* from the mediator; this policy
// protects the *mediator* from its clients. A network front-end
// (src/server/) consults it before accepting a SUBMIT:
//
//   * too many of the connection's submits still in flight (handles not
//     yet settled) -> shed the submit into a BUSY reply, and
//   * an unread write buffer past the high-water mark (the client is not
//     draining its socket; queueing more answers is unbounded memory)
//     -> same BUSY reply.
//
// Shedding into BUSY mirrors the scheduler's shed-into-residual rule:
// overload turns into a typed, retryable signal instead of unbounded
// queueing or an opaque disconnect. The policy itself is stateless per
// decision (the server passes the connection's current gauges); this
// class only centralizes the thresholds and counts the verdicts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace disco::sched {

struct BackpressureOptions {
  /// Max submits per connection whose sessions are still Pending.
  size_t max_inflight_per_conn = 64;
  /// Max bytes of queued, unsent reply frames per connection before new
  /// submits are refused.
  size_t write_high_water_bytes = 1 << 20;
};

class ConnBackpressure {
 public:
  enum class Verdict {
    Admit,          ///< under both limits
    BusyInflight,   ///< the connection has too many unsettled submits
    BusyWriteBuf,   ///< the connection is not draining its socket
  };

  explicit ConnBackpressure(BackpressureOptions options = {})
      : options_(options) {}

  const BackpressureOptions& options() const { return options_; }

  /// Decides one SUBMIT given the connection's current gauges.
  /// Thread-safe (counters are atomics).
  Verdict admit(size_t live_submits, size_t write_buffer_bytes) {
    if (live_submits >= options_.max_inflight_per_conn) {
      busy_inflight_.fetch_add(1, std::memory_order_relaxed);
      return Verdict::BusyInflight;
    }
    if (write_buffer_bytes >= options_.write_high_water_bytes) {
      busy_write_.fetch_add(1, std::memory_order_relaxed);
      return Verdict::BusyWriteBuf;
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Verdict::Admit;
  }

  struct Stats {
    uint64_t admitted = 0;
    uint64_t busy_inflight = 0;
    uint64_t busy_write = 0;
    uint64_t shed() const { return busy_inflight + busy_write; }
  };

  Stats stats() const {
    return {admitted_.load(std::memory_order_relaxed),
            busy_inflight_.load(std::memory_order_relaxed),
            busy_write_.load(std::memory_order_relaxed)};
  }

 private:
  BackpressureOptions options_;
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> busy_inflight_{0};
  std::atomic<uint64_t> busy_write_{0};
};

const char* to_string(ConnBackpressure::Verdict verdict);

}  // namespace disco::sched
