#include "sched/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace disco::sched {

QueryScheduler::QueryScheduler(SchedOptions options, double latency_scale,
                               exec::Metrics* metrics)
    : options_(std::move(options)),
      latency_scale_(latency_scale),
      metrics_(metrics) {
  internal_check(options_.per_endpoint_limit >= 1,
                 "sched: per_endpoint_limit must be >= 1 (the mediator "
                 "resolves 0 to ExecOptions::workers before construction)");
  internal_check(latency_scale_ > 0, "sched: latency_scale must be > 0");
  for (const auto& [name, limit] : options_.limits) {
    internal_check(limit >= 1, "sched: per-endpoint limit override must "
                               "be >= 1");
  }
}

QueryScheduler::Ep& QueryScheduler::entry(const std::string& endpoint) {
  {
    std::shared_lock<std::shared_mutex> lock(registry_mutex_);
    auto it = endpoints_.find(endpoint);
    if (it != endpoints_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) {
    size_t limit = options_.per_endpoint_limit;
    auto ov = options_.limits.find(endpoint);
    if (ov != options_.limits.end()) limit = ov->second;
    it = endpoints_.emplace(endpoint, std::make_unique<Ep>(limit)).first;
  }
  return *it->second;
}

const QueryScheduler::Ep* QueryScheduler::find(
    const std::string& endpoint) const {
  std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  auto it = endpoints_.find(endpoint);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

QueryScheduler::Admission QueryScheduler::admit(const std::string& endpoint,
                                                uint64_t query_id,
                                                double deadline_s) {
  Ep& ep = entry(endpoint);
  Admission out;

  std::unique_lock<std::mutex> lock(ep.mutex);

  // Fast path: a token is free and nobody is ahead of us.
  if (ep.queued == 0 && ep.in_flight < ep.limit) {
    ++ep.in_flight;
    ep.max_in_flight = std::max(ep.max_in_flight, ep.in_flight);
    ++ep.admitted;
    out.admitted = true;
    out.permit = Permit(this, &ep);
    return out;
  }

  // Bounded queue: overflow sheds immediately, without blocking.
  if (ep.queued >= options_.queue_capacity) {
    ++ep.shed;
    ++ep.shed_queue_full;
    if (metrics_) metrics_->on_shed();
    out.shed_reason = ShedReason::QueueFull;
    return out;
  }

  // Enqueue under our query's FIFO; register the query in the
  // round-robin ring on its first waiter.
  auto waiter = std::make_shared<Waiter>(query_id);
  auto& fifo = ep.by_query[query_id];
  if (fifo.empty()) ep.rr.push_back(query_id);
  fifo.push_back(waiter);
  ++ep.queued;
  ep.max_queued = std::max(ep.max_queued, ep.queued);
  ++ep.queued_calls;

  const double cap_sim_s = std::min(options_.queue_deadline_s, deadline_s);
  const auto started = std::chrono::steady_clock::now();
  bool done;
  if (std::isfinite(cap_sim_s)) {
    const auto wall_cap = std::chrono::duration<double>(
        std::max(0.0, cap_sim_s) * latency_scale_);
    done = waiter->cv.wait_for(lock, wall_cap, [&] {
      return waiter->state != Waiter::State::Waiting;
    });
  } else {
    waiter->cv.wait(lock,
                    [&] { return waiter->state != Waiter::State::Waiting; });
    done = true;
  }
  const double waited_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  // Report the wait in simulated seconds, the unit every other latency
  // in the system uses.
  out.queued_s = waited_wall_s / latency_scale_;
  ep.queue_wait_s += out.queued_s;
  if (metrics_) metrics_->on_queued(out.queued_s);

  if (!done && waiter->state == Waiter::State::Waiting) {
    // Queueing deadline expired before a grant; take ourselves out of
    // the queue (grant_next_locked can no longer pick us).
    unlink_locked(ep, waiter);
    ++ep.shed;
    ++ep.shed_deadline;
    if (metrics_) metrics_->on_shed();
    out.shed_reason = ShedReason::Deadline;
    return out;
  }

  if (waiter->state == Waiter::State::Granted) {
    // The releaser already transferred the token to us (in_flight was
    // incremented on our behalf under this same mutex).
    ++ep.admitted;
    out.admitted = true;
    out.permit = Permit(this, &ep);
    return out;
  }

  // Shed by drain(): the circuit opened while we were queued.
  ++ep.shed;
  ++ep.shed_drained;
  if (metrics_) metrics_->on_shed();
  out.shed_reason = ShedReason::Drained;
  return out;
}

void QueryScheduler::Permit::release() {
  if (scheduler_ == nullptr) return;
  QueryScheduler* scheduler = std::exchange(scheduler_, nullptr);
  Ep* endpoint = std::exchange(endpoint_, nullptr);
  scheduler->release(*endpoint);
}

void QueryScheduler::release(Ep& ep) {
  std::lock_guard<std::mutex> lock(ep.mutex);
  --ep.in_flight;
  grant_next_locked(ep);
}

void QueryScheduler::grant_next_locked(Ep& ep) {
  while (ep.in_flight < ep.limit && !ep.rr.empty()) {
    // Round-robin across query ids: the query at the front of the ring
    // gets one grant, then moves to the back if it still has waiters.
    uint64_t qid = ep.rr.front();
    ep.rr.pop_front();
    auto it = ep.by_query.find(qid);
    auto& fifo = it->second;
    std::shared_ptr<Waiter> waiter = std::move(fifo.front());
    fifo.pop_front();
    if (fifo.empty()) {
      ep.by_query.erase(it);
    } else {
      ep.rr.push_back(qid);
    }
    --ep.queued;
    // Token transfer: the slot is occupied from this instant, even
    // though the waiter's thread has not woken yet — in_flight can
    // therefore never overshoot the limit.
    ++ep.in_flight;
    ep.max_in_flight = std::max(ep.max_in_flight, ep.in_flight);
    waiter->state = Waiter::State::Granted;
    waiter->cv.notify_one();
  }
}

void QueryScheduler::unlink_locked(Ep& ep,
                                   const std::shared_ptr<Waiter>& waiter) {
  auto it = ep.by_query.find(waiter->query_id);
  if (it == ep.by_query.end()) return;
  auto& fifo = it->second;
  auto pos = std::find(fifo.begin(), fifo.end(), waiter);
  if (pos == fifo.end()) return;
  fifo.erase(pos);
  --ep.queued;
  if (fifo.empty()) {
    ep.by_query.erase(it);
    auto rr_pos = std::find(ep.rr.begin(), ep.rr.end(), waiter->query_id);
    if (rr_pos != ep.rr.end()) ep.rr.erase(rr_pos);
  }
}

void QueryScheduler::drain(const std::string& endpoint) {
  // const_cast-free lookup: drain mutates the endpoint, so use entry()
  // semantics but without creating state for endpoints never admitted.
  Ep* ep = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mutex_);
    auto it = endpoints_.find(endpoint);
    if (it != endpoints_.end()) ep = it->second.get();
  }
  if (ep == nullptr) return;

  std::lock_guard<std::mutex> lock(ep->mutex);
  for (auto& [qid, fifo] : ep->by_query) {
    for (auto& waiter : fifo) {
      waiter->state = Waiter::State::Shed;
      waiter->cv.notify_one();
    }
  }
  // The woken waiters account their own shed counters on the way out;
  // here we only empty the structures so new arrivals see a fresh queue.
  ep->by_query.clear();
  ep->rr.clear();
  ep->queued = 0;
}

void QueryScheduler::set_limit(const std::string& endpoint, size_t limit) {
  internal_check(limit >= 1, "sched: limit must be >= 1");
  Ep& ep = entry(endpoint);
  std::lock_guard<std::mutex> lock(ep.mutex);
  ep.limit = limit;
  grant_next_locked(ep);  // a raised limit frees tokens right away
}

size_t QueryScheduler::limit(const std::string& endpoint) const {
  if (const Ep* ep = find(endpoint)) {
    std::lock_guard<std::mutex> lock(ep->mutex);
    return ep->limit;
  }
  auto ov = options_.limits.find(endpoint);
  return ov != options_.limits.end() ? ov->second
                                     : options_.per_endpoint_limit;
}

EndpointSchedStats QueryScheduler::endpoint_stats(
    const std::string& endpoint) const {
  EndpointSchedStats out;
  const Ep* ep = find(endpoint);
  if (ep == nullptr) {
    out.limit = limit(endpoint);
    return out;
  }
  std::lock_guard<std::mutex> lock(ep->mutex);
  out.limit = ep->limit;
  out.in_flight = ep->in_flight;
  out.queued = ep->queued;
  out.max_in_flight = ep->max_in_flight;
  out.max_queued = ep->max_queued;
  out.admitted = ep->admitted;
  out.queued_calls = ep->queued_calls;
  out.shed = ep->shed;
  out.shed_queue_full = ep->shed_queue_full;
  out.shed_deadline = ep->shed_deadline;
  out.shed_drained = ep->shed_drained;
  out.queue_wait_s = ep->queue_wait_s;
  return out;
}

SchedStats QueryScheduler::totals() const {
  std::vector<std::string> names;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mutex_);
    names.reserve(endpoints_.size());
    for (const auto& [name, ep] : endpoints_) names.push_back(name);
  }
  SchedStats out;
  for (const auto& name : names) out += endpoint_stats(name);
  return out;
}

}  // namespace disco::sched
