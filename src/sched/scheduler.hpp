// Per-source admission control & fair query scheduling (src/sched/).
//
// DISCO's premise is scaling a mediator to *many* autonomous sources
// (§1), but a shared thread pool alone does not protect the federation
// under overload: every concurrent query fans its exec calls straight
// into the pool, so one slow repository can absorb all workers and
// starve every query that never touches it, and nothing bounds the
// number of in-flight calls a source sees. This module is the
// protective layer between the physical runtime and the
// ParallelDispatcher (cf. the Mask-Mediator-Wrapper argument for a
// dedicated intermediary component):
//
//   * Token semaphore per endpoint: at most `limit` calls of the whole
//     mediator are in flight against one repository at any instant
//     (default from ExecOptions::workers, overridable per repository).
//   * Bounded wait queue per endpoint with *fair* dequeue: waiters are
//     grouped by query id and granted round-robin across queries, so an
//     8-source fan-out query cannot starve a 1-source query no matter
//     how many of its calls arrived first.
//   * Load shedding: when the queue is full, the queueing deadline
//     expires, or the endpoint's circuit opens (drain()), the call is
//     *shed* — the runtime converts it into a §4 residual (reusing the
//     partial-answer union machinery) instead of an error, and the
//     session layer's resubmission loop completes it later, exactly
//     like any other residual.
//
// Interaction with the result cache's single-flight tickets: admission
// happens inside the runtime's fetch_direct, i.e. only the fetching
// *leader* of a coalesced flight ever holds a token — a waiter joining
// an in-flight identical fetch blocks on the shared future, not on the
// semaphore, so coalescing never multiplies token demand.
//
// Thread safety: one mutex per endpoint (calls are coarse —
// milliseconds of simulated network wait each); the endpoint registry
// sits under a shared_mutex like net::Network's. Grants hand the freed
// token directly to the next waiter under the endpoint lock, so
// in_flight can never overshoot the limit. TSan-clean
// (tests/test_sched.cpp, label `concurrency`).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "exec/metrics.hpp"

namespace disco::sched {

struct SchedOptions {
  /// Master switch; off by default so the executor's fan-everything-out
  /// behaviour is unchanged unless asked for.
  bool enabled = false;
  /// Max concurrent in-flight calls per endpoint. 0 = derive from
  /// ExecOptions::workers (the mediator resolves this before
  /// constructing the scheduler).
  size_t per_endpoint_limit = 0;
  /// Per-repository overrides of per_endpoint_limit (e.g. a fragile
  /// source that tolerates only 2 concurrent requests).
  std::unordered_map<std::string, size_t> limits;
  /// Bounded wait queue per endpoint; a call arriving at a full queue
  /// is shed immediately (no blocking).
  size_t queue_capacity = 32;
  /// Max *simulated* seconds a call may wait for a token before it is
  /// shed (min-combined with the call's remaining deadline; the wall
  /// wait scales by ExecOptions::latency_scale like everything else).
  double queue_deadline_s = std::numeric_limits<double>::infinity();
};

/// One endpoint's admission counters and gauges at one instant.
struct EndpointSchedStats {
  size_t limit = 0;
  size_t in_flight = 0;       ///< tokens held right now
  size_t queued = 0;          ///< waiters queued right now
  size_t max_in_flight = 0;   ///< high-water mark of in_flight
  size_t max_queued = 0;      ///< high-water mark of queued
  uint64_t admitted = 0;      ///< calls granted a token
  uint64_t queued_calls = 0;  ///< admissions that had to wait
  uint64_t shed = 0;          ///< calls turned into residuals
  uint64_t shed_queue_full = 0;  ///< subset: queue was at capacity
  uint64_t shed_deadline = 0;    ///< subset: queueing deadline expired
  uint64_t shed_drained = 0;     ///< subset: drained (circuit opened)
  double queue_wait_s = 0;    ///< summed simulated seconds spent queued

  EndpointSchedStats& operator+=(const EndpointSchedStats& other) {
    limit += other.limit;
    in_flight += other.in_flight;
    queued += other.queued;
    max_in_flight += other.max_in_flight;
    max_queued += other.max_queued;
    admitted += other.admitted;
    queued_calls += other.queued_calls;
    shed += other.shed;
    shed_queue_full += other.shed_queue_full;
    shed_deadline += other.shed_deadline;
    shed_drained += other.shed_drained;
    queue_wait_s += other.queue_wait_s;
    return *this;
  }
};

/// Aggregate across every endpoint (Mediator::sched_stats()).
using SchedStats = EndpointSchedStats;

class QueryScheduler {
 private:
  struct Ep;

 public:
  /// RAII token: released on destruction, so a throwing fetch can never
  /// leak an endpoint's capacity.
  class Permit {
   public:
    Permit() = default;
    ~Permit() { release(); }
    Permit(Permit&& other) noexcept
        : scheduler_(std::exchange(other.scheduler_, nullptr)),
          endpoint_(std::exchange(other.endpoint_, nullptr)) {}
    Permit& operator=(Permit&& other) noexcept {
      if (this != &other) {
        release();
        scheduler_ = std::exchange(other.scheduler_, nullptr);
        endpoint_ = std::exchange(other.endpoint_, nullptr);
      }
      return *this;
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;

    explicit operator bool() const { return scheduler_ != nullptr; }
    /// Returns the token now (idempotent); the freed token is handed to
    /// the fairest waiter.
    void release();

   private:
    friend class QueryScheduler;
    Permit(QueryScheduler* scheduler, Ep* endpoint)
        : scheduler_(scheduler), endpoint_(endpoint) {}

    QueryScheduler* scheduler_ = nullptr;
    Ep* endpoint_ = nullptr;
  };

  enum class ShedReason { None, QueueFull, Deadline, Drained };

  /// Outcome of one admission attempt.
  struct Admission {
    bool admitted = false;
    /// Held token when admitted; dropping it releases the slot.
    Permit permit;
    /// Simulated seconds spent waiting in the endpoint queue.
    double queued_s = 0;
    ShedReason shed_reason = ShedReason::None;
  };

  /// `latency_scale` converts simulated waits to wall waits, exactly as
  /// in ExecOptions. `metrics` (optional, borrowed) receives queue-wait
  /// and shed events.
  QueryScheduler(SchedOptions options, double latency_scale,
                 exec::Metrics* metrics = nullptr);

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  const SchedOptions& options() const { return options_; }

  /// Requests a token for one source call against `endpoint`, on behalf
  /// of query `query_id` (the fair-queue identity). Blocks — fairly —
  /// until a token frees, the bounded queue overflows, the queueing
  /// deadline (min of options().queue_deadline_s and `deadline_s`, in
  /// simulated seconds) expires, or drain() sheds the queue.
  /// Thread-safe; called from pool threads.
  Admission admit(const std::string& endpoint, uint64_t query_id,
                  double deadline_s);

  /// Sheds every queued waiter of `endpoint` immediately (the health
  /// tracker calls this when the endpoint's circuit opens: waiting for
  /// a source known to be dark only wastes pool workers). Tokens
  /// already granted are unaffected — their calls are already in
  /// flight. Thread-safe.
  void drain(const std::string& endpoint);

  /// Changes one endpoint's concurrency limit at run time; raising it
  /// grants queued waiters immediately. Thread-safe.
  void set_limit(const std::string& endpoint, size_t limit);
  size_t limit(const std::string& endpoint) const;

  EndpointSchedStats endpoint_stats(const std::string& endpoint) const;
  /// Sum over every endpoint seen so far.
  SchedStats totals() const;

 private:
  struct Waiter {
    enum class State { Waiting, Granted, Shed };
    explicit Waiter(uint64_t query_id) : query_id(query_id) {}
    uint64_t query_id;
    State state = State::Waiting;
    std::condition_variable cv;
  };

  struct Ep {
    explicit Ep(size_t limit) : limit(limit) {}
    mutable std::mutex mutex;
    size_t limit;
    size_t in_flight = 0;
    size_t queued = 0;
    /// Round-robin ring of query ids that currently have waiters; each
    /// active query appears exactly once.
    std::deque<uint64_t> rr;
    /// FIFO of waiters per query id.
    std::unordered_map<uint64_t, std::deque<std::shared_ptr<Waiter>>>
        by_query;
    // Counters (all guarded by mutex).
    size_t max_in_flight = 0;
    size_t max_queued = 0;
    uint64_t admitted = 0;
    uint64_t queued_calls = 0;
    uint64_t shed = 0;
    uint64_t shed_queue_full = 0;
    uint64_t shed_deadline = 0;
    uint64_t shed_drained = 0;
    double queue_wait_s = 0;
  };

  Ep& entry(const std::string& endpoint);
  const Ep* find(const std::string& endpoint) const;
  void release(Ep& ep);
  /// Must hold ep.mutex: hands free tokens to waiters, round-robin
  /// across query ids.
  void grant_next_locked(Ep& ep);
  /// Must hold ep.mutex: unlinks `waiter` from its query's FIFO (after
  /// a timeout won the race against a grant).
  void unlink_locked(Ep& ep, const std::shared_ptr<Waiter>& waiter);

  SchedOptions options_;
  double latency_scale_;
  exec::Metrics* metrics_;

  mutable std::shared_mutex registry_mutex_;
  std::unordered_map<std::string, std::unique_ptr<Ep>> endpoints_;
};

}  // namespace disco::sched
