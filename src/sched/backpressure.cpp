#include "sched/backpressure.hpp"

namespace disco::sched {

const char* to_string(ConnBackpressure::Verdict verdict) {
  switch (verdict) {
    case ConnBackpressure::Verdict::Admit:
      return "admit";
    case ConnBackpressure::Verdict::BusyInflight:
      return "inflight";
    case ConnBackpressure::Verdict::BusyWriteBuf:
      return "write_buffer";
  }
  return "?";
}

}  // namespace disco::sched
