// Small string helpers used across parsers and printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace disco {

/// Joins `parts` with `separator` ("a", "b" -> "a, b" for separator ", ").
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Splits on `separator`; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> split(std::string_view text, char separator);

/// Strips leading and trailing ASCII whitespace.
std::string trim(std::string_view text);

/// ASCII lower-casing (OQL keywords are case-insensitive).
std::string to_lower(std::string_view text);

/// True when `text` equals `keyword` ignoring ASCII case.
bool iequals(std::string_view text, std::string_view keyword);

/// Renders `text` as a double-quoted OQL string literal, escaping
/// backslash, quote, newline and tab.
std::string quote_string(std::string_view text);

/// Formats a double the way the OQL printer needs it: round-trippable and
/// always distinguishable from an integer literal (keeps a '.' or 'e').
std::string format_double(double value);

}  // namespace disco
