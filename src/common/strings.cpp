#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace disco {

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool iequals(std::string_view text, std::string_view keyword) {
  if (text.size() != keyword.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

std::string quote_string(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

std::string format_double(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buffer[64];
  auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value,
                    std::chars_format::general, 17);
  std::string out(buffer, end);
  // Shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    auto [short_end, short_ec] = std::to_chars(
        buffer, buffer + sizeof(buffer), value, std::chars_format::general,
        precision);
    std::string candidate(buffer, short_end);
    double parsed = 0;
    std::from_chars(candidate.data(), candidate.data() + candidate.size(),
                    parsed);
    if (parsed == value) {
      out = candidate;
      break;
    }
  }
  if (out.find('.') == std::string::npos &&
      out.find('e') == std::string::npos &&
      out.find("inf") == std::string::npos &&
      out.find("nan") == std::string::npos) {
    out += ".0";
  }
  return out;
}

}  // namespace disco
