#include "common/error.hpp"

namespace disco {

namespace {

std::string with_position(const std::string& message, int line, int column) {
  return message + " (at line " + std::to_string(line) + ", column " +
         std::to_string(column) + ")";
}

}  // namespace

const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::Lex:
      return "lex error";
    case ErrorKind::Parse:
      return "parse error";
    case ErrorKind::Type:
      return "type error";
    case ErrorKind::Catalog:
      return "catalog error";
    case ErrorKind::Capability:
      return "capability error";
    case ErrorKind::Execution:
      return "execution error";
    case ErrorKind::Internal:
      return "internal error";
  }
  return "unknown error";
}

DiscoError::DiscoError(ErrorKind kind, const std::string& message)
    : std::runtime_error(std::string(to_string(kind)) + ": " + message),
      kind_(kind) {}

LexError::LexError(const std::string& message, int line, int column)
    : DiscoError(ErrorKind::Lex, with_position(message, line, column)),
      line_(line),
      column_(column) {}

ParseError::ParseError(const std::string& message, int line, int column)
    : DiscoError(ErrorKind::Parse, with_position(message, line, column)),
      line_(line),
      column_(column) {}

TypeError::TypeError(const std::string& message)
    : DiscoError(ErrorKind::Type, message) {}

CatalogError::CatalogError(const std::string& message)
    : DiscoError(ErrorKind::Catalog, message) {}

CapabilityError::CapabilityError(const std::string& message)
    : DiscoError(ErrorKind::Capability, message) {}

ExecutionError::ExecutionError(const std::string& message)
    : DiscoError(ErrorKind::Execution, message) {}

InternalError::InternalError(const std::string& message)
    : DiscoError(ErrorKind::Internal, message) {}

void internal_check(bool condition, const std::string& message) {
  if (!condition) {
    throw InternalError(message);
  }
}

}  // namespace disco
