// Error taxonomy shared by every DISCO subsystem.
//
// DISCO distinguishes programming/usage errors (thrown as DiscoError
// subclasses) from *expected* distributed-system conditions such as an
// unavailable data source, which are modelled as ordinary return values
// (see physical/runtime.hpp) because the paper's §4 semantics turns them
// into partial answers, not failures.
#pragma once

#include <stdexcept>
#include <string>

namespace disco {

/// Which subsystem / phase detected the error.
enum class ErrorKind {
  Lex,         ///< tokenizer rejected the input text
  Parse,       ///< ODL/OQL/MiniSQL syntax error
  Type,        ///< type mismatch between mediator type and value/source
  Catalog,     ///< unknown extent/type/wrapper/repository, duplicate defs
  Capability,  ///< expression submitted to a wrapper that refuses it
  Execution,   ///< runtime evaluation error (bad field, bad operand, ...)
  Internal,    ///< invariant violation: a bug in DISCO itself
};

/// Human-readable name of an ErrorKind ("parse error", ...).
const char* to_string(ErrorKind kind);

/// Root of the DISCO exception hierarchy.
class DiscoError : public std::runtime_error {
 public:
  DiscoError(ErrorKind kind, const std::string& message);
  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

class LexError : public DiscoError {
 public:
  /// `line`/`column` are 1-based positions in the offending text.
  LexError(const std::string& message, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

class ParseError : public DiscoError {
 public:
  ParseError(const std::string& message, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

class TypeError : public DiscoError {
 public:
  explicit TypeError(const std::string& message);
};

class CatalogError : public DiscoError {
 public:
  explicit CatalogError(const std::string& message);
};

class CapabilityError : public DiscoError {
 public:
  explicit CapabilityError(const std::string& message);
};

class ExecutionError : public DiscoError {
 public:
  explicit ExecutionError(const std::string& message);
};

class InternalError : public DiscoError {
 public:
  explicit InternalError(const std::string& message);
};

/// Throws InternalError when `condition` is false. Use for invariants that
/// indicate a DISCO bug rather than bad user input.
void internal_check(bool condition, const std::string& message);

}  // namespace disco
