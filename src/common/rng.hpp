// Deterministic random number generation for workload generators and the
// network simulator. splitmix64 is small, fast and reproducible across
// platforms, which matters because partial-evaluation tests assert on the
// exact set of sources that time out.
#pragma once

#include <cstdint>

namespace disco {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) { return next() % bound; }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t next_in(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    next_below(static_cast<uint64_t>(hi - lo + 1)));
  }

 private:
  uint64_t state_;
};

/// 64-bit FNV-1a over a byte range; used for cost-model signatures.
inline uint64_t fnv1a(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace disco
