// Simulated network between mediators and data sources.
//
// The paper assumes real repositories on a real network where sources are
// "unavailable, as is common in a networked environment" (§1.5), and its
// §4 partial-evaluation semantics is driven purely by *which sources
// respond before a designated time elapses*. This module substitutes the
// network with a deterministic simulation (see DESIGN.md §2):
//
//   * a VirtualClock in seconds,
//   * per-endpoint latency models (base + per-row + seeded jitter),
//   * per-endpoint availability schedules (always up/down, periodic
//     outages, or seeded random failures),
//   * per-endpoint traffic statistics for the architecture benches.
//
// The physical runtime issues all exec calls of a plan logically in
// parallel (§4: "These calls proceed in parallel"): each call reports its
// own completion latency; a call completes "in time" when its latency
// fits within the query deadline. The query's elapsed time is the max
// over its parallel calls, capped by the deadline.
//
// Thread safety: call() and the stats accessors may be invoked from many
// executor threads at once (exec::ParallelDispatcher). The endpoint
// registry is guarded by a shared_mutex (reads share it), traffic
// counters by striped mutexes keyed on the endpoint name, and the
// random-availability / jitter RNG is striped *per endpoint* — each
// endpoint owns its own SplitMix64, seeded deterministically from the
// network seed and the endpoint name — so a 16-worker storm against
// disjoint endpoints never contends on a shared RNG mutex, and
// single-threaded call sequences against one endpoint still draw one
// reproducible stream (the virtual-time tests stay deterministic). No
// lock is ever held across a wrapper call: wrappers run entirely outside
// this class. Registering endpoints concurrently with calls to them is
// not supported (DDL vs. query, like the catalog).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"

namespace disco::net {

/// Simulated time in seconds. Monotonic; safe to read and advance from
/// concurrent queries (advance is a CAS add).
class VirtualClock {
 public:
  double now() const { return now_.load(std::memory_order_relaxed); }
  void advance(double seconds);
  void reset() { now_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> now_{0};
};

struct LatencyModel {
  double base_s = 0.01;      ///< round-trip setup cost
  double per_row_s = 0.0001; ///< transfer cost per result row
  double jitter_s = 0;       ///< uniform extra delay in [0, jitter_s)
};

/// When is an endpoint reachable.
struct Availability {
  enum class Mode {
    AlwaysUp,
    AlwaysDown,
    Periodic,  ///< up for up_s, then down for down_s, repeating
    Random,    ///< each call independently up with probability up_probability
  };
  Mode mode = Mode::AlwaysUp;
  double up_s = 1;
  double down_s = 1;
  double phase_s = 0;         ///< schedule offset for Periodic
  double up_probability = 1;  ///< for Random

  static Availability always_up() { return {}; }
  static Availability always_down() {
    Availability a;
    a.mode = Mode::AlwaysDown;
    return a;
  }
  static Availability periodic(double up_s, double down_s,
                               double phase_s = 0);
  static Availability random(double up_probability);
};

struct Endpoint {
  std::string name;
  LatencyModel latency;
  Availability availability;
};

/// Outcome of one simulated call.
struct CallOutcome {
  bool available = false;
  double latency_s = 0;  ///< meaningful only when available
};

/// Per-endpoint counters, inspected by benches and the catalog component.
struct TrafficStats {
  uint64_t calls = 0;
  uint64_t failures = 0;
  uint64_t rows = 0;
  double busy_s = 0;

  TrafficStats& operator+=(const TrafficStats& other) {
    calls += other.calls;
    failures += other.failures;
    rows += other.rows;
    busy_s += other.busy_s;
    return *this;
  }
};

class Network {
 public:
  explicit Network(uint64_t seed = 1) : seed_(seed) {}

  /// Registers (or replaces) an endpoint.
  void add_endpoint(Endpoint endpoint);
  bool has_endpoint(const std::string& name) const;
  /// Throws CatalogError when absent. Not safe concurrently with
  /// add_endpoint (returns a reference into the registry).
  const Endpoint& endpoint(const std::string& name) const;

  /// Convenience mutators used by tests and failure-injection benches.
  void set_availability(const std::string& name, Availability availability);
  void set_latency(const std::string& name, LatencyModel latency);

  /// Simulates one request issued at time `at` whose reply carries
  /// `result_rows` rows. Does not advance any clock; the caller owns
  /// time. Thread-safe.
  CallOutcome call(const std::string& name, size_t result_rows, double at);

  /// Simulates one zero-payload health probe issued at time `at`: an
  /// availability check priced at the endpoint's base latency (plus
  /// jitter), carrying no rows. Counted in TrafficStats as a call (and a
  /// failure when down) but contributing no row traffic — the session
  /// subsystem's half-open probes go through here. Thread-safe.
  CallOutcome probe(const std::string& name, double at) {
    return call(name, 0, at);
  }

  /// Snapshot of one endpoint's counters. Thread-safe.
  TrafficStats stats(const std::string& name) const;
  /// Aggregated counters across every endpoint (Mediator::traffic_stats).
  TrafficStats total_stats() const;
  void reset_stats();

 private:
  static constexpr size_t kStatsStripes = 16;

  /// One endpoint's private random stream (availability draws + latency
  /// jitter), seeded deterministically from the network seed and the
  /// endpoint name. unique_ptr keeps the slot address stable across
  /// rehashes, so call() can use it after dropping the registry lock.
  struct RngSlot {
    explicit RngSlot(uint64_t seed) : rng(seed) {}
    std::mutex mutex;
    SplitMix64 rng;
  };

  bool is_up(const Endpoint& endpoint, RngSlot& rng, double at);
  std::mutex& stats_stripe(const std::string& name) const {
    return stats_mutexes_[std::hash<std::string>{}(name) % kStatsStripes];
  }

  uint64_t seed_;
  mutable std::shared_mutex registry_mutex_;  ///< endpoints_/stats_/rngs_ shape
  std::unordered_map<std::string, Endpoint> endpoints_;
  std::unordered_map<std::string, TrafficStats> stats_;
  std::unordered_map<std::string, std::unique_ptr<RngSlot>> rngs_;
  mutable std::array<std::mutex, kStatsStripes> stats_mutexes_;
};

}  // namespace disco::net
