// Simulated network between mediators and data sources.
//
// The paper assumes real repositories on a real network where sources are
// "unavailable, as is common in a networked environment" (§1.5), and its
// §4 partial-evaluation semantics is driven purely by *which sources
// respond before a designated time elapses*. This module substitutes the
// network with a deterministic simulation (see DESIGN.md §2):
//
//   * a VirtualClock in seconds,
//   * per-endpoint latency models (base + per-row + seeded jitter),
//   * per-endpoint availability schedules (always up/down, periodic
//     outages, or seeded random failures),
//   * per-endpoint traffic statistics for the architecture benches.
//
// The physical runtime issues all exec calls of a plan logically in
// parallel (§4: "These calls proceed in parallel"): each call reports its
// own completion latency; a call completes "in time" when its latency
// fits within the query deadline. The query's elapsed time is the max
// over its parallel calls, capped by the deadline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"

namespace disco::net {

/// Simulated time in seconds.
class VirtualClock {
 public:
  double now() const { return now_; }
  void advance(double seconds);
  void reset() { now_ = 0; }

 private:
  double now_ = 0;
};

struct LatencyModel {
  double base_s = 0.01;      ///< round-trip setup cost
  double per_row_s = 0.0001; ///< transfer cost per result row
  double jitter_s = 0;       ///< uniform extra delay in [0, jitter_s)
};

/// When is an endpoint reachable.
struct Availability {
  enum class Mode {
    AlwaysUp,
    AlwaysDown,
    Periodic,  ///< up for up_s, then down for down_s, repeating
    Random,    ///< each call independently up with probability up_probability
  };
  Mode mode = Mode::AlwaysUp;
  double up_s = 1;
  double down_s = 1;
  double phase_s = 0;         ///< schedule offset for Periodic
  double up_probability = 1;  ///< for Random

  static Availability always_up() { return {}; }
  static Availability always_down() {
    Availability a;
    a.mode = Mode::AlwaysDown;
    return a;
  }
  static Availability periodic(double up_s, double down_s,
                               double phase_s = 0);
  static Availability random(double up_probability);
};

struct Endpoint {
  std::string name;
  LatencyModel latency;
  Availability availability;
};

/// Outcome of one simulated call.
struct CallOutcome {
  bool available = false;
  double latency_s = 0;  ///< meaningful only when available
};

/// Per-endpoint counters, inspected by benches and the catalog component.
struct TrafficStats {
  uint64_t calls = 0;
  uint64_t failures = 0;
  uint64_t rows = 0;
  double busy_s = 0;
};

class Network {
 public:
  explicit Network(uint64_t seed = 1) : rng_(seed) {}

  /// Registers (or replaces) an endpoint.
  void add_endpoint(Endpoint endpoint);
  bool has_endpoint(const std::string& name) const;
  /// Throws CatalogError when absent.
  const Endpoint& endpoint(const std::string& name) const;

  /// Convenience mutators used by tests and failure-injection benches.
  void set_availability(const std::string& name, Availability availability);
  void set_latency(const std::string& name, LatencyModel latency);

  /// Simulates one request issued at time `at` whose reply carries
  /// `result_rows` rows. Does not advance any clock; the caller owns time.
  CallOutcome call(const std::string& name, size_t result_rows, double at);

  const TrafficStats& stats(const std::string& name) const;
  void reset_stats();

 private:
  bool is_up(const Endpoint& endpoint, double at);

  std::unordered_map<std::string, Endpoint> endpoints_;
  std::unordered_map<std::string, TrafficStats> stats_;
  SplitMix64 rng_;
};

}  // namespace disco::net
