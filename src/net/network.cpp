#include "net/network.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace disco::net {

void VirtualClock::advance(double seconds) {
  internal_check(seconds >= 0, "clock cannot go backwards");
  double observed = now_.load(std::memory_order_relaxed);
  while (!now_.compare_exchange_weak(observed, observed + seconds,
                                     std::memory_order_relaxed)) {
  }
}

Availability Availability::periodic(double up_s, double down_s,
                                    double phase_s) {
  internal_check(up_s > 0 && down_s >= 0, "invalid periodic schedule");
  Availability a;
  a.mode = Mode::Periodic;
  a.up_s = up_s;
  a.down_s = down_s;
  a.phase_s = phase_s;
  return a;
}

Availability Availability::random(double up_probability) {
  internal_check(up_probability >= 0 && up_probability <= 1,
                 "probability out of range");
  Availability a;
  a.mode = Mode::Random;
  a.up_probability = up_probability;
  return a;
}

void Network::add_endpoint(Endpoint endpoint) {
  internal_check(!endpoint.name.empty(), "endpoint needs a name");
  std::unique_lock lock(registry_mutex_);
  stats_.try_emplace(endpoint.name);
  // Per-endpoint random stream, seeded from the network seed and the
  // name only: deterministic across runs and independent across
  // endpoints. try_emplace keeps the stream position when an endpoint is
  // re-registered, matching the stats behaviour above.
  if (!rngs_.contains(endpoint.name)) {
    const uint64_t slot_seed =
        seed_ ^ fnv1a(endpoint.name.data(), endpoint.name.size());
    rngs_.emplace(endpoint.name, std::make_unique<RngSlot>(slot_seed));
  }
  endpoints_[endpoint.name] = std::move(endpoint);
}

bool Network::has_endpoint(const std::string& name) const {
  std::shared_lock lock(registry_mutex_);
  return endpoints_.contains(name);
}

const Endpoint& Network::endpoint(const std::string& name) const {
  std::shared_lock lock(registry_mutex_);
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    throw CatalogError("unknown network endpoint '" + name + "'");
  }
  return it->second;
}

void Network::set_availability(const std::string& name,
                               Availability availability) {
  std::unique_lock lock(registry_mutex_);
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    throw CatalogError("unknown network endpoint '" + name + "'");
  }
  it->second.availability = availability;
}

void Network::set_latency(const std::string& name, LatencyModel latency) {
  std::unique_lock lock(registry_mutex_);
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    throw CatalogError("unknown network endpoint '" + name + "'");
  }
  it->second.latency = latency;
}

bool Network::is_up(const Endpoint& endpoint, RngSlot& rng, double at) {
  const Availability& a = endpoint.availability;
  switch (a.mode) {
    case Availability::Mode::AlwaysUp:
      return true;
    case Availability::Mode::AlwaysDown:
      return false;
    case Availability::Mode::Periodic: {
      double period = a.up_s + a.down_s;
      double position = std::fmod(at + a.phase_s, period);
      if (position < 0) position += period;
      return position < a.up_s;
    }
    case Availability::Mode::Random: {
      std::lock_guard<std::mutex> lock(rng.mutex);
      return rng.rng.next_double() < a.up_probability;
    }
  }
  return false;
}

CallOutcome Network::call(const std::string& name, size_t result_rows,
                          double at) {
  Endpoint ep;
  TrafficStats* stats = nullptr;
  RngSlot* rng = nullptr;
  {
    std::shared_lock lock(registry_mutex_);
    auto it = endpoints_.find(name);
    if (it == endpoints_.end()) {
      throw CatalogError("unknown network endpoint '" + name + "'");
    }
    ep = it->second;  // copy: the model is small and calls must not hold
                      // the registry lock while drawing random numbers
    stats = &stats_.find(name)->second;  // shape is stable during queries
    rng = rngs_.find(name)->second.get();
  }
  std::mutex& stripe = stats_stripe(name);
  {
    std::lock_guard<std::mutex> lock(stripe);
    ++stats->calls;
  }
  if (!is_up(ep, *rng, at)) {
    std::lock_guard<std::mutex> lock(stripe);
    ++stats->failures;
    return CallOutcome{false, 0};
  }
  double latency = ep.latency.base_s +
                   ep.latency.per_row_s * static_cast<double>(result_rows);
  if (ep.latency.jitter_s > 0) {
    std::lock_guard<std::mutex> lock(rng->mutex);
    latency += rng->rng.next_double() * ep.latency.jitter_s;
  }
  {
    std::lock_guard<std::mutex> lock(stripe);
    stats->rows += result_rows;
    stats->busy_s += latency;
  }
  return CallOutcome{true, latency};
}

TrafficStats Network::stats(const std::string& name) const {
  std::shared_lock lock(registry_mutex_);
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    throw CatalogError("no stats for endpoint '" + name + "'");
  }
  std::lock_guard<std::mutex> stripe(stats_stripe(name));
  return it->second;
}

TrafficStats Network::total_stats() const {
  std::shared_lock lock(registry_mutex_);
  TrafficStats total;
  for (const auto& [name, stats] : stats_) {
    std::lock_guard<std::mutex> stripe(stats_stripe(name));
    total += stats;
  }
  return total;
}

void Network::reset_stats() {
  std::unique_lock lock(registry_mutex_);
  for (auto& [name, stats] : stats_) {
    std::lock_guard<std::mutex> stripe(stats_stripe(name));
    stats = TrafficStats{};
  }
}

}  // namespace disco::net
