#include "net/network.hpp"

#include <cmath>

#include "common/error.hpp"

namespace disco::net {

void VirtualClock::advance(double seconds) {
  internal_check(seconds >= 0, "clock cannot go backwards");
  now_ += seconds;
}

Availability Availability::periodic(double up_s, double down_s,
                                    double phase_s) {
  internal_check(up_s > 0 && down_s >= 0, "invalid periodic schedule");
  Availability a;
  a.mode = Mode::Periodic;
  a.up_s = up_s;
  a.down_s = down_s;
  a.phase_s = phase_s;
  return a;
}

Availability Availability::random(double up_probability) {
  internal_check(up_probability >= 0 && up_probability <= 1,
                 "probability out of range");
  Availability a;
  a.mode = Mode::Random;
  a.up_probability = up_probability;
  return a;
}

void Network::add_endpoint(Endpoint endpoint) {
  internal_check(!endpoint.name.empty(), "endpoint needs a name");
  stats_.try_emplace(endpoint.name);
  endpoints_[endpoint.name] = std::move(endpoint);
}

bool Network::has_endpoint(const std::string& name) const {
  return endpoints_.contains(name);
}

const Endpoint& Network::endpoint(const std::string& name) const {
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    throw CatalogError("unknown network endpoint '" + name + "'");
  }
  return it->second;
}

void Network::set_availability(const std::string& name,
                               Availability availability) {
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    throw CatalogError("unknown network endpoint '" + name + "'");
  }
  it->second.availability = availability;
}

void Network::set_latency(const std::string& name, LatencyModel latency) {
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    throw CatalogError("unknown network endpoint '" + name + "'");
  }
  it->second.latency = latency;
}

bool Network::is_up(const Endpoint& endpoint, double at) {
  const Availability& a = endpoint.availability;
  switch (a.mode) {
    case Availability::Mode::AlwaysUp:
      return true;
    case Availability::Mode::AlwaysDown:
      return false;
    case Availability::Mode::Periodic: {
      double period = a.up_s + a.down_s;
      double position = std::fmod(at + a.phase_s, period);
      if (position < 0) position += period;
      return position < a.up_s;
    }
    case Availability::Mode::Random:
      return rng_.next_double() < a.up_probability;
  }
  return false;
}

CallOutcome Network::call(const std::string& name, size_t result_rows,
                          double at) {
  const Endpoint& ep = endpoint(name);
  TrafficStats& stats = stats_[name];
  ++stats.calls;
  if (!is_up(ep, at)) {
    ++stats.failures;
    return CallOutcome{false, 0};
  }
  double latency = ep.latency.base_s +
                   ep.latency.per_row_s * static_cast<double>(result_rows);
  if (ep.latency.jitter_s > 0) {
    latency += rng_.next_double() * ep.latency.jitter_s;
  }
  stats.rows += result_rows;
  stats.busy_s += latency;
  return CallOutcome{true, latency};
}

const TrafficStats& Network::stats(const std::string& name) const {
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    throw CatalogError("no stats for endpoint '" + name + "'");
  }
  return it->second;
}

void Network::reset_stats() {
  for (auto& [name, stats] : stats_) stats = TrafficStats{};
}

}  // namespace disco::net
