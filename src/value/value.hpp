// The ODMG-93 value system used throughout DISCO (§2 of the paper).
//
// A Value is null, a scalar (bool / 64-bit int / double / string), one of
// the three ODMG collection kinds (bag, set, list) or a struct with named
// fields. Values are immutable once built into a collection; copying is
// cheap (collections and structs are shared).
//
// Printing produces *OQL literal syntax* — e.g. bag("Mary", "Sam"),
// struct(name: "Mary", salary: 200) — because DISCO's partial-evaluation
// semantics (§4) requires data to be embeddable inside answers that are
// themselves queries. The OQL parser accepts everything this prints.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace disco {

enum class ValueKind { Null, Bool, Int, Double, String, Bag, Set, List, Struct };

/// Human-readable kind name ("bag", "struct", ...).
const char* to_string(ValueKind kind);

class Value {
 public:
  /// Constructs null.
  Value();

  // -- factories -----------------------------------------------------------
  static Value null();
  static Value boolean(bool v);
  static Value integer(int64_t v);
  static Value real(double v);
  static Value string(std::string v);
  static Value bag(std::vector<Value> items);
  /// Set: duplicates (under operator==) are removed; order is normalized.
  static Value set(std::vector<Value> items);
  static Value list(std::vector<Value> items);
  static Value strct(std::vector<std::pair<std::string, Value>> fields);

  // -- inspection -----------------------------------------------------------
  ValueKind kind() const;
  bool is_null() const { return kind() == ValueKind::Null; }
  bool is_collection() const;
  bool is_numeric() const {
    return kind() == ValueKind::Int || kind() == ValueKind::Double;
  }

  /// Accessors throw ExecutionError when the kind does not match.
  bool as_bool() const;
  int64_t as_int() const;
  /// Numeric coercion: Int widens to double.
  double as_double() const;
  const std::string& as_string() const;
  /// Items of a bag/set/list.
  const std::vector<Value>& items() const;
  /// Fields of a struct, in declaration order.
  const std::vector<std::pair<std::string, Value>>& fields() const;
  /// Struct field lookup by name; throws ExecutionError when absent.
  const Value& field(std::string_view name) const;
  /// Struct field lookup that reports absence instead of throwing.
  const Value* find_field(std::string_view name) const;

  /// Number of items (collections) or fields (structs); 0 otherwise.
  size_t size() const;

  // -- algebra ---------------------------------------------------------------
  /// Deep structural equality. Int 1 == Double 1.0 (ODMG numeric equality);
  /// bag equality is multiset equality; set equality ignores order.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order over all values (kind-major, then content). Used to
  /// normalize sets and to give deterministic printing of bags in tests.
  /// NaN has a stable position in the order: NaN == NaN, and NaN sorts
  /// after every other number (+inf included) — IEEE unordered semantics
  /// would corrupt every index and dedup structure built on this order.
  static int compare(const Value& a, const Value& b);
  friend bool operator<(const Value& a, const Value& b) {
    return compare(a, b) < 0;
  }

  /// Hash consistent with operator== (numeric values hash by double).
  uint64_t hash() const;

  /// Approximate in-memory footprint in bytes, counting shared payloads
  /// at every reference (an upper bound under structural sharing). Used
  /// for cache byte budgets, not exact allocator accounting. Strings
  /// count heap bytes only when they spill the small-string buffer —
  /// the inline buffer is already inside sizeof(Value) / the field pair
  /// (counting capacity() unconditionally double-counted every short
  /// string, inflating cache budgets by ~2x on string-heavy rows).
  size_t deep_size() const;

  /// OQL literal text; see file comment.
  std::string to_oql() const;

  /// Bag union preserving multiplicities ("the union of two bags is a
  /// bag", §1.3). Both operands must be collections; result is a bag
  /// unless both are sets (then set union).
  static Value union_with(const Value& a, const Value& b);

 private:
  struct Collection {
    ValueKind kind;
    std::vector<Value> items;
  };
  struct StructData {
    std::vector<std::pair<std::string, Value>> fields;
  };

  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string,
                   std::shared_ptr<const Collection>,
                   std::shared_ptr<const StructData>>;

  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  const Collection& collection() const;
  const StructData& struct_data() const;

  Payload payload_;
};

/// Convenience: bag of structs from parallel (names, rows) — used by data
/// sources when reformatting answers for the mediator.
Value make_row_bag(const std::vector<std::string>& field_names,
                   const std::vector<std::vector<Value>>& rows);

}  // namespace disco
