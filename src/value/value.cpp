#include "value/value.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace disco {

const char* to_string(ValueKind kind) {
  switch (kind) {
    case ValueKind::Null:
      return "null";
    case ValueKind::Bool:
      return "bool";
    case ValueKind::Int:
      return "int";
    case ValueKind::Double:
      return "double";
    case ValueKind::String:
      return "string";
    case ValueKind::Bag:
      return "bag";
    case ValueKind::Set:
      return "set";
    case ValueKind::List:
      return "list";
    case ValueKind::Struct:
      return "struct";
  }
  return "unknown";
}

Value::Value() : payload_(std::monostate{}) {}

Value Value::null() { return Value(); }

Value Value::boolean(bool v) { return Value(Payload(v)); }

Value Value::integer(int64_t v) { return Value(Payload(v)); }

Value Value::real(double v) { return Value(Payload(v)); }

Value Value::string(std::string v) { return Value(Payload(std::move(v))); }

Value Value::bag(std::vector<Value> items) {
  auto coll = std::make_shared<Collection>();
  coll->kind = ValueKind::Bag;
  coll->items = std::move(items);
  return Value(Payload(std::shared_ptr<const Collection>(std::move(coll))));
}

Value Value::set(std::vector<Value> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end(),
                          [](const Value& a, const Value& b) {
                            return compare(a, b) == 0;
                          }),
              items.end());
  auto coll = std::make_shared<Collection>();
  coll->kind = ValueKind::Set;
  coll->items = std::move(items);
  return Value(Payload(std::shared_ptr<const Collection>(std::move(coll))));
}

Value Value::list(std::vector<Value> items) {
  auto coll = std::make_shared<Collection>();
  coll->kind = ValueKind::List;
  coll->items = std::move(items);
  return Value(Payload(std::shared_ptr<const Collection>(std::move(coll))));
}

Value Value::strct(std::vector<std::pair<std::string, Value>> fields) {
  auto data = std::make_shared<StructData>();
  data->fields = std::move(fields);
  return Value(Payload(std::shared_ptr<const StructData>(std::move(data))));
}

ValueKind Value::kind() const {
  switch (payload_.index()) {
    case 0:
      return ValueKind::Null;
    case 1:
      return ValueKind::Bool;
    case 2:
      return ValueKind::Int;
    case 3:
      return ValueKind::Double;
    case 4:
      return ValueKind::String;
    case 5:
      return std::get<5>(payload_)->kind;
    case 6:
      return ValueKind::Struct;
  }
  throw InternalError("corrupt value payload");
}

bool Value::is_collection() const {
  ValueKind k = kind();
  return k == ValueKind::Bag || k == ValueKind::Set || k == ValueKind::List;
}

const Value::Collection& Value::collection() const {
  if (payload_.index() != 5) {
    throw ExecutionError(std::string("expected a collection, got ") +
                         to_string(kind()));
  }
  return *std::get<5>(payload_);
}

const Value::StructData& Value::struct_data() const {
  if (payload_.index() != 6) {
    throw ExecutionError(std::string("expected a struct, got ") +
                         to_string(kind()));
  }
  return *std::get<6>(payload_);
}

bool Value::as_bool() const {
  if (auto* v = std::get_if<bool>(&payload_)) return *v;
  throw ExecutionError(std::string("expected bool, got ") +
                       to_string(kind()));
}

int64_t Value::as_int() const {
  if (auto* v = std::get_if<int64_t>(&payload_)) return *v;
  throw ExecutionError(std::string("expected int, got ") + to_string(kind()));
}

double Value::as_double() const {
  if (auto* v = std::get_if<int64_t>(&payload_)) {
    return static_cast<double>(*v);
  }
  if (auto* v = std::get_if<double>(&payload_)) return *v;
  throw ExecutionError(std::string("expected numeric, got ") +
                       to_string(kind()));
}

const std::string& Value::as_string() const {
  if (auto* v = std::get_if<std::string>(&payload_)) return *v;
  throw ExecutionError(std::string("expected string, got ") +
                       to_string(kind()));
}

const std::vector<Value>& Value::items() const { return collection().items; }

const std::vector<std::pair<std::string, Value>>& Value::fields() const {
  return struct_data().fields;
}

const Value& Value::field(std::string_view name) const {
  const Value* found = find_field(name);
  if (found == nullptr) {
    throw ExecutionError("struct has no field named '" + std::string(name) +
                         "'");
  }
  return *found;
}

const Value* Value::find_field(std::string_view name) const {
  for (const auto& [field_name, value] : struct_data().fields) {
    if (field_name == name) return &value;
  }
  return nullptr;
}

size_t Value::size() const {
  ValueKind k = kind();
  if (k == ValueKind::Struct) return struct_data().fields.size();
  if (is_collection()) return collection().items.size();
  return 0;
}

namespace {

/// Rank used by the kind-major total order. Int and Double share a rank so
/// that numeric comparison is value-based, matching operator==.
int kind_rank(ValueKind kind) {
  switch (kind) {
    case ValueKind::Null:
      return 0;
    case ValueKind::Bool:
      return 1;
    case ValueKind::Int:
    case ValueKind::Double:
      return 2;
    case ValueKind::String:
      return 3;
    case ValueKind::Bag:
      return 4;
    case ValueKind::Set:
      return 5;
    case ValueKind::List:
      return 6;
    case ValueKind::Struct:
      return 7;
  }
  return 8;
}

/// NaN ordering rule: IEEE NaN compares unordered against everything,
/// which would make this function return 0 for NaN vs *any* number and
/// silently corrupt every structure built on the total order (the
/// skiplist index, std::map keyed on Value, set dedup, bag sorting).
/// We give NaN a stable position instead: NaN == NaN, and NaN sorts
/// after every other number, +inf included. Value::hash canonicalizes
/// NaN bit patterns to match.
int compare_doubles(double a, double b) {
  const bool a_nan = std::isnan(a);
  const bool b_nan = std::isnan(b);
  if (a_nan || b_nan) {
    if (a_nan && b_nan) return 0;
    return a_nan ? 1 : -1;
  }
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::compare(const Value& a, const Value& b) {
  int ra = kind_rank(a.kind());
  int rb = kind_rank(b.kind());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a.kind()) {
    case ValueKind::Null:
      return 0;
    case ValueKind::Bool:
      return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
    case ValueKind::Int:
    case ValueKind::Double:
      return compare_doubles(a.as_double(), b.as_double());
    case ValueKind::String:
      return a.as_string().compare(b.as_string());
    case ValueKind::Bag:
    case ValueKind::Set:
    case ValueKind::List: {
      // Bags compare by sorted content so that equal multisets are equal
      // regardless of arrival order; lists compare positionally.
      if (a.kind() == ValueKind::List) {
        const auto& ia = a.items();
        const auto& ib = b.items();
        size_t n = std::min(ia.size(), ib.size());
        for (size_t i = 0; i < n; ++i) {
          int c = compare(ia[i], ib[i]);
          if (c != 0) return c;
        }
        if (ia.size() != ib.size()) return ia.size() < ib.size() ? -1 : 1;
        return 0;
      }
      std::vector<Value> ia = a.items();
      std::vector<Value> ib = b.items();
      std::sort(ia.begin(), ia.end());
      std::sort(ib.begin(), ib.end());
      size_t n = std::min(ia.size(), ib.size());
      for (size_t i = 0; i < n; ++i) {
        int c = compare(ia[i], ib[i]);
        if (c != 0) return c;
      }
      if (ia.size() != ib.size()) return ia.size() < ib.size() ? -1 : 1;
      return 0;
    }
    case ValueKind::Struct: {
      const auto& fa = a.fields();
      const auto& fb = b.fields();
      size_t n = std::min(fa.size(), fb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = fa[i].first.compare(fb[i].first);
        if (c != 0) return c;
        c = compare(fa[i].second, fb[i].second);
        if (c != 0) return c;
      }
      if (fa.size() != fb.size()) return fa.size() < fb.size() ? -1 : 1;
      return 0;
    }
  }
  throw InternalError("corrupt value in compare");
}

bool operator==(const Value& a, const Value& b) {
  return Value::compare(a, b) == 0;
}

uint64_t Value::hash() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL * (kind_rank(kind()) + 1);
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  switch (kind()) {
    case ValueKind::Null:
      break;
    case ValueKind::Bool:
      mix(as_bool() ? 1 : 2);
      break;
    case ValueKind::Int:
    case ValueKind::Double: {
      double d = as_double();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      // All NaN bit patterns are one equivalence class under compare()
      // (NaN == NaN), so they must hash alike.
      if (std::isnan(d)) d = std::numeric_limits<double>::quiet_NaN();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      mix(bits);
      break;
    }
    case ValueKind::String:
      mix(fnv1a(as_string().data(), as_string().size()));
      break;
    case ValueKind::Bag:
    case ValueKind::Set: {
      // Order-independent combination for multiset semantics.
      uint64_t sum = 0;
      for (const Value& item : items()) sum += item.hash();
      mix(sum);
      mix(items().size());
      break;
    }
    case ValueKind::List:
      for (const Value& item : items()) mix(item.hash());
      mix(items().size());
      break;
    case ValueKind::Struct:
      for (const auto& [name, value] : fields()) {
        mix(fnv1a(name.data(), name.size()));
        mix(value.hash());
      }
      break;
  }
  return h;
}

namespace {

/// Heap bytes behind a std::string: zero while the text fits the
/// small-string buffer (those bytes live inside the string object,
/// which the caller already counts), capacity + 1 terminator once it
/// spills. Counting capacity() unconditionally double-counted every
/// short string.
size_t string_heap_bytes(const std::string& s) {
  return s.capacity() > std::string().capacity() ? s.capacity() + 1 : 0;
}

}  // namespace

size_t Value::deep_size() const {
  size_t bytes = sizeof(Value);
  switch (kind()) {
    case ValueKind::Null:
    case ValueKind::Bool:
    case ValueKind::Int:
    case ValueKind::Double:
      break;
    case ValueKind::String:
      // The string object itself is inline in the variant (inside
      // sizeof(Value)); only a spilled buffer adds heap bytes.
      bytes += string_heap_bytes(as_string());
      break;
    case ValueKind::Bag:
    case ValueKind::Set:
    case ValueKind::List:
      bytes += sizeof(Collection);
      for (const Value& item : items()) bytes += item.deep_size();
      break;
    case ValueKind::Struct:
      bytes += sizeof(StructData);
      for (const auto& [name, value] : fields()) {
        // Each entry is pair<string, Value>: the name object plus the
        // value's footprint (deep_size counts the Value object), plus
        // the name's spilled buffer if any.
        bytes += sizeof(std::string) + string_heap_bytes(name) +
                 value.deep_size();
      }
      break;
  }
  return bytes;
}

std::string Value::to_oql() const {
  switch (kind()) {
    case ValueKind::Null:
      return "nil";
    case ValueKind::Bool:
      return as_bool() ? "true" : "false";
    case ValueKind::Int:
      return std::to_string(as_int());
    case ValueKind::Double:
      return format_double(as_double());
    case ValueKind::String:
      return quote_string(as_string());
    case ValueKind::Bag:
    case ValueKind::Set:
    case ValueKind::List: {
      std::vector<std::string> parts;
      parts.reserve(items().size());
      for (const Value& item : items()) parts.push_back(item.to_oql());
      const char* ctor = kind() == ValueKind::Bag   ? "bag"
                         : kind() == ValueKind::Set ? "set"
                                                    : "list";
      return std::string(ctor) + "(" + join(parts, ", ") + ")";
    }
    case ValueKind::Struct: {
      std::vector<std::string> parts;
      parts.reserve(fields().size());
      for (const auto& [name, value] : fields()) {
        parts.push_back(name + ": " + value.to_oql());
      }
      return "struct(" + join(parts, ", ") + ")";
    }
  }
  throw InternalError("corrupt value in to_oql");
}

Value Value::union_with(const Value& a, const Value& b) {
  if (!a.is_collection() || !b.is_collection()) {
    throw ExecutionError("union expects collections, got " +
                         std::string(to_string(a.kind())) + " and " +
                         std::string(to_string(b.kind())));
  }
  std::vector<Value> items = a.items();
  items.insert(items.end(), b.items().begin(), b.items().end());
  if (a.kind() == ValueKind::Set && b.kind() == ValueKind::Set) {
    return Value::set(std::move(items));
  }
  return Value::bag(std::move(items));
}

Value make_row_bag(const std::vector<std::string>& field_names,
                   const std::vector<std::vector<Value>>& rows) {
  std::vector<Value> structs;
  structs.reserve(rows.size());
  for (const auto& row : rows) {
    internal_check(row.size() == field_names.size(),
                   "row arity does not match field names");
    std::vector<std::pair<std::string, Value>> fields;
    fields.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      fields.emplace_back(field_names[i], row[i]);
    }
    structs.push_back(Value::strct(std::move(fields)));
  }
  return Value::bag(std::move(structs));
}

}  // namespace disco
