#include "core/mediator_wrapper.hpp"

#include "algebra/to_oql.hpp"
#include "common/error.hpp"
#include "fedcat/boundary.hpp"
#include "oql/printer.hpp"

namespace disco {

MediatorWrapper::MediatorWrapper(Mediator* remote) : remote_(remote) {
  internal_check(remote_ != nullptr, "MediatorWrapper needs a mediator");
}

grammar::Grammar MediatorWrapper::capabilities() const {
  return grammar::CapabilitySet{.get = true,
                                .project = true,
                                .select = true,
                                .join = true,
                                .compose = true}
      .to_grammar();
}

wrapper::SubmitResult MediatorWrapper::submit(
    const catalog::Repository& repository, const algebra::LogicalPtr& expr,
    const wrapper::BindingMap& bindings) {
  (void)repository;
  fedcat::RenamedQuery renamed;
  try {
    renamed = fedcat::rename_for_remote(expr, bindings);
  } catch (const ExecutionError& e) {
    return wrapper::SubmitResult::refused(e.what());
  }
  const std::string remote_oql =
      oql::to_oql(algebra::reconstruct(renamed.expr));
  {
    std::lock_guard<std::mutex> lock(last_oql_mutex_);
    last_oql_ = remote_oql;
  }

  Answer answer = remote_->query(remote_oql);
  if (!answer.complete()) {
    throw ExecutionError(
        "remote mediator returned a partial answer for: " + remote_oql);
  }

  // Env-shaped results carry remote attribute names inside each variable's
  // row; rename them back into this mediator's name space.
  if (expr->op != algebra::LOp::Project) {
    return wrapper::SubmitResult::ok(
        fedcat::rename_rows_to_mediator(answer.data(), renamed.var_maps));
  }
  return wrapper::SubmitResult::ok(answer.data());
}

}  // namespace disco
