#include "core/mediator_wrapper.hpp"

#include "algebra/to_oql.hpp"
#include "common/error.hpp"
#include "oql/printer.hpp"

namespace disco {

namespace {

using algebra::LogicalPtr;
using algebra::LOp;

/// Rewrites var.attr paths into the remote attribute names.
class Renamer {
 public:
  explicit Renamer(const wrapper::BindingMap& bindings)
      : bindings_(bindings) {}

  LogicalPtr rename(const LogicalPtr& node) {
    switch (node->op) {
      case LOp::Get: {
        const wrapper::ExtentBinding& binding = binding_of(node->extent);
        var_maps_[node->var] = binding.map;
        return algebra::get(binding.source_relation, node->var);
      }
      case LOp::Filter: {
        LogicalPtr child = rename(node->child);
        return algebra::filter(child, rename_expr(node->predicate));
      }
      case LOp::Project: {
        LogicalPtr child = rename(node->child);
        return algebra::project(child, rename_expr(node->projection),
                                node->distinct);
      }
      case LOp::Join: {
        LogicalPtr left = rename(node->left);
        LogicalPtr right = rename(node->right);
        return algebra::join(left, right,
                             node->predicate == nullptr
                                 ? nullptr
                                 : rename_expr(node->predicate));
      }
      default:
        throw ExecutionError(
            std::string("operator '") + to_string(node->op) +
            "' cannot cross the mediator-wrapper boundary");
    }
  }

  /// Local mediator attribute names for each variable, for renaming
  /// returned rows back.
  const std::unordered_map<std::string, const catalog::TypeMap*>& var_maps()
      const {
    return var_maps_;
  }

 private:
  const wrapper::ExtentBinding& binding_of(const std::string& extent) const {
    auto it = bindings_.find(extent);
    internal_check(it != bindings_.end(),
                   "missing binding for extent '" + extent + "'");
    return it->second;
  }

  oql::ExprPtr rename_expr(const oql::ExprPtr& expr) {
    using oql::ExprKind;
    switch (expr->kind) {
      case ExprKind::Literal:
      case ExprKind::Ident:
        return expr;
      case ExprKind::Path: {
        if (expr->child->kind == ExprKind::Ident) {
          auto it = var_maps_.find(expr->child->name);
          if (it != var_maps_.end()) {
            return oql::path(expr->child,
                             it->second->to_source_attribute(expr->name));
          }
        }
        return oql::path(rename_expr(expr->child), expr->name);
      }
      case ExprKind::Unary:
        return oql::unary(expr->unary_op, rename_expr(expr->child));
      case ExprKind::Binary:
        return oql::binary(expr->binary_op, rename_expr(expr->left),
                           rename_expr(expr->right));
      case ExprKind::StructCtor: {
        std::vector<std::pair<std::string, oql::ExprPtr>> fields;
        for (const auto& [name, value] : expr->struct_fields) {
          fields.emplace_back(name, rename_expr(value));
        }
        return oql::struct_ctor(std::move(fields));
      }
      default:
        throw ExecutionError("expression '" + oql::to_oql(expr) +
                             "' cannot cross the mediator-wrapper boundary");
    }
  }

  const wrapper::BindingMap& bindings_;
  std::unordered_map<std::string, const catalog::TypeMap*> var_maps_;
};

}  // namespace

MediatorWrapper::MediatorWrapper(Mediator* remote) : remote_(remote) {
  internal_check(remote_ != nullptr, "MediatorWrapper needs a mediator");
}

grammar::Grammar MediatorWrapper::capabilities() const {
  return grammar::CapabilitySet{.get = true,
                                .project = true,
                                .select = true,
                                .join = true,
                                .compose = true}
      .to_grammar();
}

wrapper::SubmitResult MediatorWrapper::submit(
    const catalog::Repository& repository, const algebra::LogicalPtr& expr,
    const wrapper::BindingMap& bindings) {
  (void)repository;
  Renamer renamer(bindings);
  LogicalPtr renamed;
  try {
    renamed = renamer.rename(expr);
  } catch (const ExecutionError& e) {
    return wrapper::SubmitResult::refused(e.what());
  }
  const std::string remote_oql = oql::to_oql(algebra::reconstruct(renamed));
  {
    std::lock_guard<std::mutex> lock(last_oql_mutex_);
    last_oql_ = remote_oql;
  }

  Answer answer = remote_->query(remote_oql);
  if (!answer.complete()) {
    throw ExecutionError(
        "remote mediator returned a partial answer for: " + remote_oql);
  }

  // Env-shaped results carry remote attribute names inside each variable's
  // row; rename them back into this mediator's name space.
  if (expr->op != LOp::Project) {
    std::vector<Value> renamed_rows;
    renamed_rows.reserve(answer.data().size());
    for (const Value& env : answer.data().items()) {
      std::vector<std::pair<std::string, Value>> fields;
      for (const auto& [var, row] : env.fields()) {
        auto it = renamer.var_maps().find(var);
        internal_check(it != renamer.var_maps().end(),
                       "unknown variable in remote answer");
        fields.emplace_back(var, it->second->rename_row_to_mediator(row));
      }
      renamed_rows.push_back(Value::strct(std::move(fields)));
    }
    return wrapper::SubmitResult::ok(Value::bag(std::move(renamed_rows)));
  }
  return wrapper::SubmitResult::ok(answer.data());
}

}  // namespace disco
