#include "core/answer.hpp"

#include "common/error.hpp"
#include "oql/printer.hpp"

namespace disco {

Answer Answer::complete_answer(Value data, QueryStats stats) {
  return Answer(std::move(data), {}, std::move(stats));
}

Answer Answer::partial_answer(Value data,
                              std::vector<oql::ExprPtr> residuals,
                              QueryStats stats) {
  internal_check(!residuals.empty(),
                 "a partial answer needs at least one residual");
  return Answer(std::move(data), std::move(residuals), std::move(stats));
}

std::vector<std::string> Answer::residual_queries() const {
  std::vector<std::string> out;
  out.reserve(residuals_.size());
  for (const oql::ExprPtr& residual : residuals_) {
    out.push_back(oql::to_oql(residual));
  }
  return out;
}

oql::ExprPtr Answer::as_expr() const {
  if (complete()) {
    return oql::literal(data_);
  }
  std::vector<oql::ExprPtr> parts = residuals_;
  // §4: "The first part contains a query on the unavailable data sources
  // and the second part contains data." Drop an empty data part so the
  // single-residual case prints as a plain query.
  bool has_data = data_.is_collection() ? !data_.items().empty()
                                        : !data_.is_null();
  if (has_data) {
    parts.push_back(oql::literal(data_));
  }
  if (parts.size() == 1) {
    return parts.front();
  }
  return oql::call("union", std::move(parts));
}

std::string Answer::to_oql() const { return oql::to_oql(as_expr()); }

}  // namespace disco
