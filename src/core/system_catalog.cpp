#include "core/system_catalog.hpp"

#include "common/error.hpp"
#include "oql/eval.hpp"
#include "oql/parser.hpp"

namespace disco {

void SystemCatalog::register_mediator(const std::string& name,
                                      Mediator* mediator) {
  internal_check(mediator != nullptr, "null mediator");
  if (name.empty()) throw CatalogError("mediator needs a name");
  for (const auto& [existing, unused] : mediators_) {
    if (existing == name) {
      throw CatalogError("mediator '" + name + "' is already registered");
    }
  }
  mediators_.emplace_back(name, mediator);
}

std::vector<std::string> SystemCatalog::mediator_names() const {
  std::vector<std::string> out;
  out.reserve(mediators_.size());
  for (const auto& [name, mediator] : mediators_) out.push_back(name);
  return out;
}

Mediator* SystemCatalog::mediator(const std::string& name) const {
  for (const auto& [existing, mediator] : mediators_) {
    if (existing == name) return mediator;
  }
  throw CatalogError("unknown mediator '" + name + "'");
}

std::vector<std::string> SystemCatalog::mediators_serving_type(
    const std::string& type) const {
  std::vector<std::string> out;
  for (const auto& [name, mediator] : mediators_) {
    if (mediator->catalog().types().contains(type) &&
        !mediator->catalog().extents_of_type(type).empty()) {
      out.push_back(name);
    }
  }
  return out;
}

std::vector<std::string> SystemCatalog::mediators_providing_attributes(
    const std::vector<std::string>& attributes) const {
  std::vector<std::string> out;
  for (const auto& [name, mediator] : mediators_) {
    const catalog::Catalog& cat = mediator->catalog();
    bool any = false;
    for (const std::string& type : cat.types().type_names()) {
      if (cat.extents_of_type(type).empty()) continue;
      std::vector<Attribute> attrs = cat.types().all_attributes(type);
      bool all = true;
      for (const std::string& wanted : attributes) {
        bool found = false;
        for (const Attribute& attr : attrs) {
          if (attr.name == wanted) {
            found = true;
            break;
          }
        }
        if (!found) {
          all = false;
          break;
        }
      }
      if (all) {
        any = true;
        break;
      }
    }
    if (any) out.push_back(name);
  }
  return out;
}

Value SystemCatalog::system_overview() const {
  std::vector<Value> rows;
  for (const auto& [name, mediator] : mediators_) {
    const Value extents = mediator->catalog().metaextent_rows();
    for (const Value& extent : extents.items()) {
      std::vector<std::pair<std::string, Value>> fields;
      fields.emplace_back("mediator", Value::string(name));
      for (const auto& [field_name, value] : extent.fields()) {
        fields.emplace_back(field_name, value);
      }
      rows.push_back(Value::strct(std::move(fields)));
    }
  }
  return Value::bag(std::move(rows));
}

Value SystemCatalog::query(const std::string& oql_text) const {
  oql::MapResolver resolver;
  {
    std::vector<Value> rows;
    for (const auto& [name, mediator] : mediators_) {
      (void)mediator;
      rows.push_back(Value::strct({{"name", Value::string(name)}}));
    }
    resolver.bind("mediators", Value::bag(std::move(rows)));
  }
  resolver.bind("extents", system_overview());
  {
    std::vector<Value> rows;
    for (const auto& [name, mediator] : mediators_) {
      for (const std::string& type_name :
           mediator->catalog().types().type_names()) {
        const InterfaceType& type =
            mediator->catalog().types().get(type_name);
        rows.push_back(Value::strct(
            {{"mediator", Value::string(name)},
             {"name", Value::string(type.name)},
             {"super", Value::string(type.super)},
             {"implicit_extent", Value::string(type.implicit_extent)}}));
      }
    }
    resolver.bind("types", Value::bag(std::move(rows)));
  }
  {
    std::vector<Value> rows;
    for (const auto& [name, mediator] : mediators_) {
      for (const std::string& repo_name :
           mediator->catalog().repository_names()) {
        const catalog::Repository& repo =
            mediator->catalog().repository(repo_name);
        rows.push_back(Value::strct(
            {{"mediator", Value::string(name)},
             {"name", Value::string(repo.name)},
             {"host", Value::string(repo.host)},
             {"db", Value::string(repo.db_name)},
             {"address", Value::string(repo.address)}}));
      }
    }
    resolver.bind("repositories", Value::bag(std::move(rows)));
  }
  return oql::Evaluator(&resolver).eval(oql::parse(oql_text));
}

}  // namespace disco
