// Umbrella header: everything a DISCO application needs.
//
//   #include "core/disco.hpp"
//
// See README.md for the quickstart and examples/ for complete programs.
#pragma once

#include "core/answer.hpp"            // Answer, QueryStats (§4)
#include "core/mediator.hpp"          // Mediator — the main entry point
#include "core/mediator_wrapper.hpp"  // composing mediators (Fig. 1)
#include "core/system_catalog.hpp"    // the catalog component C (Fig. 1)
#include "net/network.hpp"            // simulated network & availability
#include "session/health.hpp"         // circuit breakers & probing
#include "session/session.hpp"        // async QueryHandle sessions
#include "sources/csv/csv_source.hpp" // CSV data sources
#include "sources/docstore/doc_store.hpp" // JSON document data sources
#include "sources/kvstore/kv_store.hpp" // key-value data sources
#include "sources/memdb/database.hpp" // memdb relational data sources
#include "wrapper/csv_wrapper.hpp"
#include "wrapper/doc_wrapper.hpp"
#include "wrapper/kv_wrapper.hpp"
#include "wrapper/memdb_wrapper.hpp"
