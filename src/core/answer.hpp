// Query answers with partial-evaluation semantics (§4 of the paper).
//
// "DISCO uses partial evaluation semantics to return partial answers to
//  queries ... Thus, the answer to a query may be another query."
//
// An Answer carries a data part and zero or more residual queries. Its
// to_oql() text is the paper's two-part form
//
//     union(select x.name from x in person0, bag("Sam"))
//
// which is *itself a legal query*: feeding it back to Mediator::query()
// when the missing sources are up produces the complete answer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "oql/ast.hpp"
#include "optimizer/cost.hpp"
#include "physical/runtime.hpp"
#include "value/value.hpp"

namespace disco {

struct QueryStats {
  physical::RunStats run;
  size_t plans_considered = 0;
  optimizer::Cost estimated;
  bool local_mode = false;
  /// Per-query trace (src/obs/); null unless Mediator::Options::obs is
  /// enabled. Shared with the mediator's trace ring buffer.
  std::shared_ptr<const obs::Trace> trace;
};

class Answer {
 public:
  /// Complete answer.
  static Answer complete_answer(Value data, QueryStats stats);
  /// Partial answer: available data + residual queries.
  static Answer partial_answer(Value data,
                               std::vector<oql::ExprPtr> residuals,
                               QueryStats stats);

  /// True when every data source answered: the data IS the result.
  bool complete() const { return residuals_.empty(); }

  /// The data part (for complete answers, the full result).
  const Value& data() const { return data_; }

  /// The residual queries over unavailable sources, as OQL text.
  std::vector<std::string> residual_queries() const;

  /// The residual queries as expressions — what the session layer
  /// re-executes on resubmission (src/session/).
  const std::vector<oql::ExprPtr>& residuals() const { return residuals_; }

  /// The whole answer as one OQL expression (§4's union(query, data)).
  /// For complete answers this is the data literal.
  oql::ExprPtr as_expr() const;
  std::string to_oql() const;

  const QueryStats& stats() const { return stats_; }

 private:
  Answer(Value data, std::vector<oql::ExprPtr> residuals, QueryStats stats)
      : data_(std::move(data)),
        residuals_(std::move(residuals)),
        stats_(std::move(stats)) {}

  Value data_;
  std::vector<oql::ExprPtr> residuals_;
  QueryStats stats_;
};

}  // namespace disco
