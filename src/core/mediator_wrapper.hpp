// Mediator-as-data-source: the wrapper that lets mediators be combined
// (Figure 1: "permits mediators to be combined, providing a mechanism to
// deal with the complexity introduced by a large number of data
// sources").
//
// A downstream mediator registers extents whose repository is an upstream
// mediator; this wrapper translates pushed logical expressions back into
// OQL text (the two mediators share the language, so the "foreign
// language" here is OQL itself), renames extents and attributes through
// the type maps, queries the remote mediator, and renames the rows back.
//
// The remote mediator is required to produce a *complete* answer: this
// wrapper does not splice a remote partial answer into the local plan
// (residuals would then mix two mediators' name spaces). A remote partial
// answer raises ExecutionError; composing partial evaluation across
// mediator tiers is the same open question the paper leaves for future
// work in §6.2.
#pragma once

#include <mutex>

#include "core/mediator.hpp"
#include "wrapper/wrapper.hpp"

namespace disco {

class MediatorWrapper : public wrapper::Wrapper {
 public:
  /// `remote` must outlive this wrapper.
  explicit MediatorWrapper(Mediator* remote);

  /// Mediators speak full OQL: every operator, composed.
  grammar::Grammar capabilities() const override;
  wrapper::SubmitResult submit(const catalog::Repository& repository,
                               const algebra::LogicalPtr& expr,
                               const wrapper::BindingMap& bindings) override;
  std::string kind() const override { return "mediator"; }

  /// Last OQL text shipped to the remote mediator (for tests).
  /// Snapshot: submit() may run concurrently on executor threads.
  std::string last_oql() const {
    std::lock_guard<std::mutex> lock(last_oql_mutex_);
    return last_oql_;
  }

 private:
  Mediator* remote_;
  mutable std::mutex last_oql_mutex_;
  std::string last_oql_;
};

}  // namespace disco
