#include "core/mediator.hpp"

#include <chrono>
#include <optional>

#include "algebra/logical.hpp"
#include "algebra/to_oql.hpp"
#include "common/error.hpp"
#include "odl/odl.hpp"
#include "oql/eval.hpp"
#include "oql/parser.hpp"
#include "oql/printer.hpp"
#include "physical/runtime.hpp"
#include "vec/ops.hpp"

namespace disco {

Mediator::Mediator() : Mediator(Options{}) {}

Mediator::Mediator(Options options)
    : options_(std::move(options)), network_(options_.network_seed) {
  // Observability (src/obs/). The registry is always wired (counters are
  // cheap); the tracer only exists when tracing is on.
  registry_ = options_.obs.registry != nullptr ? options_.obs.registry
                                               : &obs::Registry::global();
  obs::ObsOptions obs_options = options_.obs;
  obs_options.registry = registry_;
  if (obs_options.enabled) {
    tracer_ = std::make_unique<obs::Tracer>(obs_options);
  }

  if (options_.exec.workers > 0) {
    pool_ = std::make_unique<exec::ThreadPool>(options_.exec.workers);
    dispatcher_ = std::make_unique<exec::ParallelDispatcher>(
        pool_.get(), &network_, options_.exec, &exec_metrics_);
  }

  // Per-source admission control (src/sched/). Only meaningful in
  // wall-clock mode: virtual-time calls are sequential by construction.
  if (options_.sched.enabled && dispatcher_ != nullptr) {
    sched::SchedOptions sched_options = options_.sched;
    if (sched_options.per_endpoint_limit == 0) {
      sched_options.per_endpoint_limit = options_.exec.workers;
    }
    scheduler_ = std::make_unique<sched::QueryScheduler>(
        std::move(sched_options), options_.exec.latency_scale,
        &exec_metrics_);
  }

  // Health tracking (src/session/). The tracker's time base is simulated
  // seconds in both modes: the VirtualClock in virtual-time mode, wall
  // time divided by latency_scale in wall-clock mode — so cooldowns and
  // probe intervals mean the same thing everywhere.
  session::SourceHealthTracker::Clock health_clock;
  if (options_.exec.workers > 0) {
    const auto epoch = std::chrono::steady_clock::now();
    const double scale = options_.exec.latency_scale;
    health_clock = [epoch, scale] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           epoch)
                 .count() /
             scale;
    };
  } else {
    health_clock = [this] { return clock_.now(); };
  }
  if (options_.cache.enabled) {
    // Same simulated-seconds time base as the health tracker, so
    // cache TTLs and circuit cooldowns mean the same thing.
    result_cache_ =
        std::make_unique<cache::ResultCache>(options_.cache, health_clock);
  }
  tracker_ = std::make_unique<session::SourceHealthTracker>(
      options_.health, std::move(health_clock));
  if (dispatcher_ != nullptr) {
    // Wall-clock mode: every dispatched call's final outcome feeds the
    // tracker from the dispatcher threads. (Virtual-time mode feeds it
    // through ExecContext::report_health instead — see make_context.)
    dispatcher_->set_outcome_listener(
        [this](const std::string& endpoint,
               const exec::DispatchOutcome& outcome) {
          tracker_->on_outcome(endpoint, outcome.available,
                               outcome.latency_s);
        });
  }

  sessions_ = std::make_unique<session::ResubmissionManager>(
      [this](const std::string& text, double deadline_s) {
        QueryOptions q;
        q.deadline_s = deadline_s;
        return query(text, q);
      },
      options_.session);
  tracker_->set_listener([this](const std::string&, session::CircuitState,
                                session::CircuitState to) {
    // A circuit closed: some source came back — resubmit residuals now
    // instead of waiting out the retry interval.
    if (to == session::CircuitState::Closed) sessions_->notify_recovery();
  });
  if (result_cache_ != nullptr) {
    // Any circuit-state transition is evidence the source's world moved
    // (it went dark, or it came back — possibly restarted with different
    // data): drop its cached answers so resubmitted residuals and fresh
    // queries refetch.
    tracker_->add_listener([this](const std::string& repository,
                                  session::CircuitState,
                                  session::CircuitState) {
      result_cache_->invalidate_repository(repository);
    });
  }
  if (scheduler_ != nullptr) {
    // A circuit opened: every call queued for that endpoint is waiting
    // for a source now known to be dark — shed them into §4 residuals
    // immediately instead of letting them burn pool workers until their
    // queueing deadline.
    tracker_->add_listener([this](const std::string& repository,
                                  session::CircuitState,
                                  session::CircuitState to) {
      if (to == session::CircuitState::Open) scheduler_->drain(repository);
    });
  }

  if (options_.health.enabled && dispatcher_ != nullptr) {
    // Background half-open probes, priced like zero-row calls. Probe
    // latencies keep the §3.3 cost model warm while a source is dark:
    // successful probes are recorded under a sentinel expression, so the
    // per-repository average reflects the source's current round-trip
    // time the moment it recovers.
    static const algebra::LogicalPtr kProbeSignature =
        algebra::get("__health_probe", "p");
    prober_ = std::make_unique<session::Prober>(
        tracker_.get(), pool_.get(),
        options_.health.probe_interval_s * options_.exec.latency_scale,
        [this](const std::string& repository) {
          return dispatcher_->probe(repository, clock_.now(),
                                    options_.health.probe_deadline_s);
        },
        [this](const std::string& repository,
               const exec::DispatchOutcome& outcome) {
          if (outcome.available) {
            history_.record(repository, kProbeSignature, outcome.latency_s,
                            0);
          }
        });
  }
}

void Mediator::apply_invalidation(const fedcat::UpdateScope& scope) {
  if (result_cache_ == nullptr) return;
  // Interface definitions change what any query *means*; every cached
  // submit answer is suspect. Extent changes only invalidate their
  // repository's entries (the cache keys carry the extent name inside
  // the remote algebra text, so entries for other repositories cannot
  // alias the changed extents). New wrappers, factories, repositories
  // and view definitions invalidate nothing: a name that did not exist
  // has no cached answers, and views are expanded at planning time.
  //
  // The invalidation runs *after* the new epoch is published. In-flight
  // queries of the old epoch may still publish results for dropped
  // extents afterwards; the cache's repository generation fence and the
  // circuit-transition listeners bound such strays, and they are
  // answers a query of that epoch was entitled to anyway.
  if (scope.types_changed) {
    result_cache_->invalidate_all();
    return;
  }
  for (const std::string& repository : scope.repositories) {
    result_cache_->invalidate_repository(repository);
  }
}

void Mediator::register_wrapper(const std::string& name,
                                std::shared_ptr<wrapper::Wrapper> wrapper) {
  internal_check(wrapper != nullptr, "null wrapper");
  apply_invalidation(
      fedcat_.update([&](fedcat::CatalogManager::Draft& draft) {
        if (draft.wrappers.contains(name)) {
          throw CatalogError("wrapper '" + name + "' is already defined");
        }
        draft.wrappers[name] = std::move(wrapper);
      }));
}

void Mediator::register_wrapper_factory(
    const std::string& constructor,
    std::function<std::shared_ptr<wrapper::Wrapper>()> factory) {
  internal_check(static_cast<bool>(factory), "null wrapper factory");
  std::lock_guard<std::mutex> lock(factories_mutex_);
  factories_[constructor] = std::move(factory);
}

void Mediator::register_repository(catalog::Repository repository,
                                   net::LatencyModel latency,
                                   net::Availability availability) {
  apply_invalidation(
      fedcat_.update([&](fedcat::CatalogManager::Draft& draft) {
        net::Endpoint endpoint;
        endpoint.name = repository.name;
        endpoint.latency = latency;
        endpoint.availability = availability;
        draft.catalog.define_repository(std::move(repository));
        // The network is internally synchronized and add_endpoint is
        // keyed by name, so publishing the endpoint here (rather than
        // after the swap) only makes it reachable a moment early.
        network_.add_endpoint(std::move(endpoint));
      }));
}

wrapper::Wrapper* Mediator::wrapper_by_name(const std::string& name) const {
  // Wrapper bindings are never replaced or dropped, only added; every
  // later epoch copies the map, so the object outlives any epoch swap.
  return fedcat_.snapshot()->wrapper_by_name(name);
}

void Mediator::execute_odl(const std::string& text) {
  // Parse outside the admin path; all statements of one text publish as
  // ONE new epoch — queries never see half an ODL batch.
  const std::vector<odl::Statement> statements = odl::parse_odl(text);
  fedcat::UpdateScope scope =
      fedcat_.update([&](fedcat::CatalogManager::Draft& draft) {
        for (const odl::Statement& statement : statements) {
          if (const auto* interface_def =
                  std::get_if<odl::InterfaceDef>(&statement)) {
            draft.catalog.types().define(interface_def->type);
            draft.scope.types_changed = true;
          } else if (const auto* extent_def =
                         std::get_if<odl::ExtentDef>(&statement)) {
            // The wrapper object must exist so the optimizer can ask for
            // its capabilities.
            if (!draft.wrappers.contains(extent_def->extent.wrapper)) {
              throw CatalogError("unknown wrapper '" +
                                 extent_def->extent.wrapper + "'");
            }
            draft.scope.touch_repository(extent_def->extent.repository);
            draft.catalog.define_extent(extent_def->extent);
          } else if (const auto* drop =
                         std::get_if<odl::DropExtent>(&statement)) {
            draft.scope.touch_repository(
                draft.catalog.extent(drop->name).repository);
            draft.catalog.drop_extent(drop->name);
          } else if (const auto* view_def =
                         std::get_if<odl::ViewDefStmt>(&statement)) {
            draft.catalog.define_view(view_def->name, view_def->query);
          } else if (const auto* assignment =
                         std::get_if<odl::Assignment>(&statement)) {
            if (assignment->constructor == "Repository") {
              catalog::Repository repository;
              repository.name = assignment->var;
              for (const auto& [key, value] : assignment->args) {
                if (key == "host") {
                  repository.host = value;
                } else if (key == "name") {
                  repository.db_name = value;
                } else if (key == "address") {
                  repository.address = value;
                } else {
                  throw CatalogError("Repository has no attribute '" + key +
                                     "'");
                }
              }
              net::Endpoint endpoint;
              endpoint.name = repository.name;
              endpoint.latency = options_.default_latency;
              draft.catalog.define_repository(std::move(repository));
              network_.add_endpoint(std::move(endpoint));
            } else {
              std::function<std::shared_ptr<wrapper::Wrapper>()> factory;
              {
                std::lock_guard<std::mutex> lock(factories_mutex_);
                auto it = factories_.find(assignment->constructor);
                if (it == factories_.end()) {
                  throw CatalogError("unknown constructor '" +
                                     assignment->constructor + "'");
                }
                factory = it->second;
              }
              if (draft.wrappers.contains(assignment->var)) {
                throw CatalogError("wrapper '" + assignment->var +
                                   "' is already defined");
              }
              draft.wrappers[assignment->var] = factory();
            }
          }
        }
      });
  apply_invalidation(scope);
}

optimizer::Optimizer Mediator::make_optimizer(
    const fedcat::SnapshotPtr& snap) const {
  return make_optimizer(snap, options_.optimizer);
}

optimizer::Optimizer Mediator::make_optimizer(
    const fedcat::SnapshotPtr& snap,
    optimizer::OptimizerOptions opt_options) const {
  opt_options.vec = options_.vec.enabled;
  optimizer::Optimizer opt(
      &snap->catalog,
      [snap](const std::string& name) { return snap->wrapper_by_name(name); },
      &history_, std::move(opt_options));
  if (options_.health.enabled) {
    // Health-aware costing: plans leaning on open-circuit or flaky
    // sources price their expected retries (availability 0 while Open).
    opt.set_health([this](const std::string& repository) {
      return tracker_->availability(repository);
    });
  }
  return opt;
}

physical::ExecContext Mediator::make_context(
    const fedcat::SnapshotPtr& snap,
    const oql::CollectionResolver* resolver, double deadline_s,
    obs::ObsContext obs) {
  physical::ExecContext context;
  context.obs = obs;
  context.catalog = &snap->catalog;
  context.network = &network_;
  context.clock = &clock_;
  // Captures the snapshot: the epoch stays alive for as long as this
  // runtime context does.
  context.wrapper_by_name = [snap](const std::string& name) {
    return snap->wrapper_by_name(name);
  };
  context.resolver = resolver;
  context.dispatcher = dispatcher_.get();
  if (scheduler_ != nullptr) {
    context.scheduler = scheduler_.get();
    // Fair-queue identity: one fresh id per runtime context, so every
    // top-level run (query, submit, resubmission round) competes as one
    // party in the round-robin dequeue. Auxiliary materialization runs
    // get their own contexts/ids, which only subdivides this query's
    // share further — it never inflates it.
    context.query_id = next_query_id_.fetch_add(1, std::memory_order_relaxed)
                       + 1;
  }
  if (result_cache_ != nullptr) {
    // No version fence here: invalidation is epoch-scoped now
    // (apply_invalidation drops exactly what an admin update touched,
    // the moment it publishes).
    context.cache = result_cache_.get();
  }
  context.deadline_s = deadline_s;
  context.validate_rows = options_.validate_source_rows;
  context.vec = options_.vec;
  context.metrics = options_.vec.enabled ? registry_ : nullptr;
  context.record_exec = [this](const std::string& repository,
                               const algebra::LogicalPtr& remote,
                               double time_s, size_t rows) {
    history_.record(repository, remote, time_s, rows);
  };
  if (options_.health.enabled) {
    context.admit_source = [this](const std::string& repository) {
      bool admitted = tracker_->admit(repository);
      if (!admitted) exec_metrics_.on_short_circuit();
      return admitted;
    };
  }
  if (dispatcher_ == nullptr) {
    // Virtual-time mode has no dispatcher outcome listener; the runtime
    // reports each finished source call here. Health is tracked even
    // when breaking is disabled (passive monitoring).
    context.report_health = [this](const std::string& repository,
                                   bool available, double latency_s) {
      tracker_->on_outcome(repository, available, latency_s);
    };
  }
  return context;
}

Answer Mediator::query(const std::string& oql_text, QueryOptions options) {
  // Pin the current epoch: this query plans and executes against exactly
  // this snapshot, no matter what administration does meanwhile.
  const fedcat::SnapshotPtr snap = fedcat_.snapshot();
  QueryTrace qt = begin_trace(oql_text);
  if (!options_.enable_plan_cache) {
    oql::ExprPtr parsed;
    {
      obs::ScopedSpan parse(qt.obs(), "parse", "mediator");
      parsed = oql::parse(oql_text);
    }
    Answer answer = query_impl(snap, parsed, options, qt);
    finish_query_trace(qt, answer);
    return answer;
  }
  // §3.3: cached plans are recomputed when the catalog changes (the
  // epoch number moved) — and when cost observations materially move the
  // learned model, so a plan chosen with the 0/1 default does not
  // outlive the first real measurements.
  const uint64_t epoch = snap->epoch;
  const uint64_t history_version = history_.version();
  std::optional<optimizer::Optimizer::Result> planned;
  {
    std::unique_lock lock(plan_cache_mutex_);
    if (plan_cache_epoch_ != epoch ||
        plan_cache_history_version_ != history_version) {
      plan_cache_.clear();
      plan_cache_epoch_ = epoch;
      plan_cache_history_version_ = history_version;
      ++plan_cache_stats_.invalidations;
    }
    auto it = plan_cache_.find(oql_text);
    if (it != plan_cache_.end()) {
      ++plan_cache_stats_.hits;
      planned = it->second;  // cheap: shared subtrees
    } else {
      ++plan_cache_stats_.misses;
    }
  }
  if (planned) {
    if (qt.trace != nullptr) {
      qt.trace->instant(qt.root, "plan_cache_hit", "mediator");
    }
  } else {
    oql::ExprPtr parsed;
    {
      obs::ScopedSpan parse(qt.obs(), "parse", "mediator");
      parsed = oql::parse(oql_text);
    }
    planned = optimize_traced(snap, parsed, qt);
    std::unique_lock lock(plan_cache_mutex_);
    // Cache only if the world did not move while we optimized; a stale
    // insert would serve outdated plans to later queries.
    if (plan_cache_epoch_ == epoch &&
        plan_cache_history_version_ == history_version) {
      plan_cache_.emplace(oql_text, *planned);
    }
  }
  Answer answer = run_planned(snap, *planned, options, qt);
  finish_query_trace(qt, answer);
  return answer;
}

Answer Mediator::query(const oql::ExprPtr& query_expr,
                       QueryOptions options) {
  const fedcat::SnapshotPtr snap = fedcat_.snapshot();
  // The OQL text is only reconstructed when someone will read it.
  QueryTrace qt = begin_trace(tracer_ != nullptr ? oql::to_oql(query_expr)
                                                 : std::string());
  Answer answer = query_impl(snap, query_expr, options, qt);
  finish_query_trace(qt, answer);
  return answer;
}

Answer Mediator::query_impl(const fedcat::SnapshotPtr& snap,
                            const oql::ExprPtr& query_expr,
                            QueryOptions options, const QueryTrace& qt) {
  optimizer::Optimizer::Result planned = optimize_traced(snap, query_expr, qt);
  return run_planned(snap, planned, options, qt);
}

optimizer::Optimizer::Result Mediator::optimize_traced(
    const fedcat::SnapshotPtr& snap, const oql::ExprPtr& query_expr,
    const QueryTrace& qt) const {
  obs::ScopedSpan span(qt.obs(), "optimize", "optimizer");
  optimizer::Optimizer::Result planned =
      make_optimizer(snap).optimize(query_expr, span.context());
  if (span) {
    span.tag("plans_considered",
             static_cast<uint64_t>(planned.plans_considered));
    span.tag("estimated_net_s", planned.estimated.net_s);
    span.tag("estimated_rows", planned.estimated.rows);
    if (planned.plan != nullptr) {
      span.tag("plan", physical::to_physical_string(planned.plan));
    } else {
      span.tag("mode", "local evaluation");
    }
  }
  return planned;
}

session::QueryHandle Mediator::submit(const std::string& oql_text,
                                      QueryOptions options) {
  session::QueryHandle handle =
      sessions_->submit(oql_text, options.deadline_s);
  {
    std::lock_guard<std::mutex> lock(handles_mutex_);
    // Soft cap: a long-lived daemon accumulates handles from clients
    // that never poll again; sweep settled ones before growing further.
    constexpr size_t kSweepThreshold = 4096;
    if (handles_.size() >= kSweepThreshold) {
      for (auto it = handles_.begin(); it != handles_.end();) {
        if (it->second.state() != session::SessionState::Pending) {
          it = handles_.erase(it);
        } else {
          ++it;
        }
      }
    }
    handles_.emplace(handle.id(), handle);
  }
  return handle;
}

session::QueryHandle Mediator::find_handle(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(handles_mutex_);
  auto it = handles_.find(query_id);
  return it == handles_.end() ? session::QueryHandle{} : it->second;
}

bool Mediator::cancel(uint64_t query_id) {
  session::QueryHandle handle;
  {
    std::lock_guard<std::mutex> lock(handles_mutex_);
    auto it = handles_.find(query_id);
    if (it == handles_.end()) return false;
    handle = it->second;
    handles_.erase(it);
  }
  // cancel() fires settled callbacks inline; never call it while holding
  // handles_mutex_ (a callback may re-enter the registry).
  handle.cancel();
  return true;
}

bool Mediator::release_handle(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(handles_mutex_);
  return handles_.erase(query_id) > 0;
}

size_t Mediator::live_handles() const {
  std::lock_guard<std::mutex> lock(handles_mutex_);
  return handles_.size();
}

namespace {

/// Local-mode vec fast path: `agg(name)` over a resolver collection,
/// computed batch-wise when the collection converts to columns and the
/// kernel covers the case. nullopt hands the expression back to the
/// evaluator, whose errors (empty min/max, non-numeric sum, unknown
/// name) then surface exactly as on the row path.
std::optional<Value> vec_local_aggregate(
    const oql::ExprPtr& expr, const oql::CollectionResolver& resolver,
    const vec::VecOptions& vec_options, obs::Registry* metrics) {
  if (expr == nullptr || expr->kind != oql::ExprKind::Call) {
    return std::nullopt;
  }
  const std::string& fn = expr->name;
  if (fn != "sum" && fn != "count" && fn != "min" && fn != "max" &&
      fn != "avg") {
    return std::nullopt;
  }
  if (expr->args.size() != 1 ||
      expr->args[0]->kind != oql::ExprKind::Ident) {
    return std::nullopt;
  }
  std::optional<Value> collection = resolver.resolve(expr->args[0]->name);
  if (!collection.has_value()) return std::nullopt;
  const ValueKind kind = collection->kind();
  if (kind != ValueKind::Bag && kind != ValueKind::Set &&
      kind != ValueKind::List) {
    return std::nullopt;
  }
  std::optional<vec::Table> table =
      vec::from_rows(collection->items(), vec_options.batch_rows);
  if (!table.has_value()) return std::nullopt;
  obs::ScopedRate rate(metrics, "vec.agg");
  rate.add_rows(table->rows());
  return vec::aggregate_table(*table, fn);
}

}  // namespace

Answer Mediator::run_planned(const fedcat::SnapshotPtr& snap,
                             const optimizer::Optimizer::Result& planned,
                             QueryOptions options, const QueryTrace& qt) {

  QueryStats stats;
  stats.plans_considered = planned.plans_considered;
  stats.estimated = planned.estimated;
  stats.local_mode = planned.plan == nullptr;
  stats.trace = qt.trace;

  // Materialize auxiliary collections (extents referenced from nested
  // subqueries, or everything in local mode). If any auxiliary source is
  // unavailable, the whole query is the residual answer — finer-grained
  // partial evaluation only applies to the main plan's branches.
  oql::MapResolver resolver;
  bool aux_incomplete = false;
  auto materialize = [&](const std::vector<std::pair<
                             std::string, physical::PhysicalPtr>>& plans,
                         bool closure) {
    for (const auto& [name, plan] : plans) {
      obs::ScopedSpan aux_span(qt.obs(), "aux", "mediator");
      aux_span.tag("name", name + (closure ? "*" : ""));
      physical::Runtime runtime(make_context(snap, nullptr,
                                             options.deadline_s,
                                             aux_span.context()));
      physical::RunResult run = runtime.run(plan);
      stats.run += run.stats;
      if (!run.complete()) {
        aux_incomplete = true;
        continue;
      }
      if (closure) {
        resolver.bind_closure(name, run.data);
      } else {
        resolver.bind(name, run.data);
      }
    }
  };
  materialize(planned.aux, false);
  materialize(planned.aux_closures, true);
  if (aux_incomplete) {
    return Answer::partial_answer(Value::bag({}), {planned.expanded},
                                  std::move(stats));
  }

  if (planned.plan == nullptr) {
    // Local mode: the mediator evaluates the expression itself over the
    // materialized collections.
    obs::ScopedSpan local(qt.obs(), "local_eval", "mediator");
    if (options_.vec.enabled) {
      // Batch-wise aggregation: `agg(name)` over a materialized flat bag
      // computes columnar; any shape/type the kernel cannot reproduce
      // exactly falls through to the evaluator (same result or error).
      std::optional<Value> agg =
          vec_local_aggregate(planned.local, resolver, options_.vec,
                              registry_);
      if (agg.has_value()) {
        return Answer::complete_answer(std::move(*agg), std::move(stats));
      }
    }
    Value data = oql::Evaluator(&resolver).eval(planned.local);
    return Answer::complete_answer(std::move(data), std::move(stats));
  }

  physical::RunResult run;
  {
    obs::ScopedSpan exec_span(qt.obs(), "execute", "mediator");
    physical::Runtime runtime(make_context(snap, &resolver,
                                           options.deadline_s,
                                           exec_span.context()));
    run = runtime.run(planned.plan);
  }
  stats.run += run.stats;

  if (run.complete()) {
    return Answer::complete_answer(std::move(run.data), std::move(stats));
  }
  // §4: transform the unfinished physical parts back into OQL.
  obs::ScopedSpan residual_span(qt.obs(), "residuals", "mediator");
  std::vector<oql::ExprPtr> residuals;
  residuals.reserve(run.residuals.size());
  for (const algebra::LogicalPtr& residual : run.residuals) {
    residuals.push_back(algebra::reconstruct(residual));
  }
  residual_span.tag("count", static_cast<uint64_t>(residuals.size()));
  return Answer::partial_answer(std::move(run.data), std::move(residuals),
                                std::move(stats));
}

namespace {

const char* basis_name(optimizer::CostHistory::Basis basis) {
  switch (basis) {
    case optimizer::CostHistory::Basis::Exact:
      return "exact";
    case optimizer::CostHistory::Basis::Close:
      return "close";
    case optimizer::CostHistory::Basis::Repository:
      return "repository";
    case optimizer::CostHistory::Basis::Default:
      return "default";
  }
  return "default";
}

/// Collects every source call (Exec and BindJoin leaves) of a physical
/// plan, in plan order, with its §3.3 learned cost estimate and whether
/// the result cache holds a fresh answer for it right now.
void collect_submits(const physical::PhysicalPtr& node,
                     const optimizer::CostHistory& history,
                     const cache::ResultCache* cache,
                     std::vector<Mediator::ExplainReport::Submit>* out) {
  if (node == nullptr) return;
  if (node->op == physical::POp::Exec ||
      node->op == physical::POp::BindJoin) {
    Mediator::ExplainReport::Submit submit;
    submit.repository = node->repository;
    submit.wrapper = node->wrapper;
    submit.remote = algebra::to_algebra_string(node->remote);
    submit.bind_join = node->op == physical::POp::BindJoin;
    // Bind joins ship the base remote *plus* a run-time key disjunction,
    // so only the non-bound key can be probed statically; a "cached"
    // bind join means its exact probe was cached (keys included) only
    // when the plan degenerates to the base remote.
    submit.cached =
        cache != nullptr && cache->contains(node->repository, node->remote);
    // Bind-join probes are recorded (and costed) under the plan's
    // canonical one-key probe_shape, so report the estimate the Coster
    // actually consulted.
    submit.learned = history.estimate(
        node->repository,
        submit.bind_join && node->probe_shape != nullptr ? node->probe_shape
                                                         : node->remote);
    out->push_back(std::move(submit));
  }
  collect_submits(node->child, history, cache, out);
  collect_submits(node->left, history, cache, out);
  collect_submits(node->right, history, cache, out);
  for (const physical::PhysicalPtr& child : node->children) {
    collect_submits(child, history, cache, out);
  }
}

/// Static mirror of the runtime's per-operator vec decisions over the
/// chosen plan: returns the schema the subtree produces batched, or
/// nullopt when it will run on the row path, appending one "<op> -> vec"
/// / "<op> -> row path" line per mediator-side operator. Exec leaves are
/// batchable when their remote is env-shaped against the catalog's
/// interfaces; actual rows can still fall back (always safe).
std::optional<vec::Schema> vec_walk(const physical::PhysicalPtr& node,
                                    const catalog::Catalog& catalog,
                                    std::vector<std::string>* ops) {
  switch (node->op) {
    case physical::POp::Exec:
      return vec::static_schema(node->remote, catalog);
    case physical::POp::Const:
      return std::nullopt;  // data-dependent; decided at run time
    case physical::POp::Filter: {
      std::optional<vec::Schema> in = vec_walk(node->child, catalog, ops);
      if (in.has_value() &&
          vec::compile_predicate(node->predicate, *in).has_value()) {
        ops->push_back("filter -> vec");
        return in;
      }
      ops->push_back("filter -> row path");
      return std::nullopt;
    }
    case physical::POp::Project: {
      std::optional<vec::Schema> in = vec_walk(node->child, catalog, ops);
      if (in.has_value()) {
        std::optional<vec::ProjectionProgram> program =
            vec::compile_projection(node->projection, *in);
        if (program.has_value()) {
          ops->push_back("project -> vec");
          return program->out_schema;
        }
      }
      ops->push_back("project -> row path");
      return std::nullopt;
    }
    case physical::POp::HashJoin: {
      std::optional<vec::Schema> left = vec_walk(node->left, catalog, ops);
      std::optional<vec::Schema> right =
          vec_walk(node->right, catalog, ops);
      bool ok = left.has_value() && right.has_value();
      std::optional<vec::Schema> merged;
      if (ok) {
        merged = *left;
        merged->columns.insert(merged->columns.end(),
                               right->columns.begin(),
                               right->columns.end());
        const auto key_col = [&](const oql::ExprPtr& key,
                                 const vec::Schema& schema) {
          return key->kind == oql::ExprKind::Path &&
                 key->child->kind == oql::ExprKind::Ident &&
                 schema.index_of(key->child->name, key->name) >= 0;
        };
        ok = key_col(node->left_key, *left) &&
             key_col(node->right_key, *right) &&
             (node->predicate == nullptr ||
              vec::compile_predicate(node->predicate, *merged).has_value());
      }
      if (ok) {
        ops->push_back("hash join -> vec");
        return merged;
      }
      ops->push_back("hash join -> row path");
      return std::nullopt;
    }
    case physical::POp::MergeJoin:
    case physical::POp::NestedLoopJoin: {
      vec_walk(node->left, catalog, ops);
      vec_walk(node->right, catalog, ops);
      ops->push_back(node->op == physical::POp::MergeJoin
                         ? "merge join -> row path"
                         : "nested-loop join -> row path");
      return std::nullopt;
    }
    case physical::POp::BindJoin: {
      vec_walk(node->left, catalog, ops);
      ops->push_back("bind join -> row path");
      return std::nullopt;
    }
    case physical::POp::Union: {
      std::optional<vec::Schema> merged;
      bool ok = true;
      bool first = true;
      for (const physical::PhysicalPtr& child : node->children) {
        std::optional<vec::Schema> part = vec_walk(child, catalog, ops);
        if (!part.has_value()) {
          ok = false;
          continue;
        }
        if (first) {
          merged = std::move(part);
          first = false;
        } else if (!merged.has_value() || !merged->same_layout(*part)) {
          ok = false;
        }
      }
      if (ok && merged.has_value()) {
        ops->push_back("union -> vec (batch splice)");
        return merged;
      }
      ops->push_back("union -> row path");
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace

Mediator::ExplainReport Mediator::explain_report(
    const std::string& oql_text) const {
  const fedcat::SnapshotPtr snap = fedcat_.snapshot();
  optimizer::OptimizerOptions opt_options = options_.optimizer;
  opt_options.record_decisions = true;
  optimizer::Optimizer::Result planned =
      make_optimizer(snap, opt_options).optimize(oql::parse(oql_text));

  ExplainReport report;
  report.query = oql_text;
  report.expanded = oql::to_oql(planned.expanded);
  report.local_mode = planned.plan == nullptr;
  report.estimated = planned.estimated;
  report.plans_considered = planned.plans_considered;
  report.prune = planned.prune;
  report.decisions = std::move(planned.decisions);
  report.candidates = std::move(planned.candidates);
  for (const auto& [name, plan] : planned.aux) {
    report.aux.emplace_back(name, physical::to_physical_string(plan));
    collect_submits(plan, history_, result_cache_.get(), &report.submits);
  }
  for (const auto& [name, plan] : planned.aux_closures) {
    report.aux.emplace_back(name + "*", physical::to_physical_string(plan));
    collect_submits(plan, history_, result_cache_.get(), &report.submits);
  }
  if (planned.plan != nullptr) {
    report.plan = physical::to_physical_string(planned.plan);
    collect_submits(planned.plan, history_, result_cache_.get(),
                    &report.submits);
  }
  report.vec = options_.vec.enabled;
  if (report.vec && planned.plan != nullptr) {
    vec_walk(planned.plan, snap->catalog, &report.vec_ops);
  }
  return report;
}

std::string Mediator::ExplainReport::to_string() const {
  std::string out;
  out += "expanded: " + expanded + "\n";
  for (const auto& [name, plan_text] : aux) {
    out += "aux " + name + ": " + plan_text + "\n";
  }
  if (local_mode) {
    out += "mode: local evaluation\n";
    if (vec) out += "vec: on (local aggregation when the bag is flat)\n";
    return out;
  }
  out += "plan: " + plan + "\n";
  if (vec) {
    out += "vec: on\n";
    for (const std::string& op : vec_ops) {
      out += "vec " + op + "\n";
    }
  }
  out += "plans considered: " + std::to_string(plans_considered) + "\n";
  out += "pruning: " + std::to_string(prune.extents_considered) + "/" +
         std::to_string(prune.extents_total) + " extents considered, " +
         std::to_string(prune.pruned_by_type) + " pruned by type; " +
         std::to_string(prune.grammar_consultations) +
         " grammar consultations (" +
         std::to_string(prune.grammar_memo_hits) + " memo hits), " +
         std::to_string(prune.variants_skipped) +
         " variants shape-shared\n";
  out += "estimated: net " + std::to_string(estimated.net_s) + "s, cpu " +
         std::to_string(estimated.cpu_s) + "s, rows " +
         std::to_string(estimated.rows) + "\n";
  for (const Submit& submit : submits) {
    out += "submit " + submit.repository + " [" + submit.wrapper + "]";
    if (submit.bind_join) out += " (bindjoin)";
    if (submit.cached) out += " (served from cache)";
    out += ": " + submit.remote + " -- learned: time " +
           std::to_string(submit.learned.time_s) + "s, rows " +
           std::to_string(submit.learned.rows) + " (" +
           basis_name(submit.learned.basis) + ", " +
           std::to_string(submit.learned.observations) + " obs)\n";
  }
  for (const optimizer::PushdownDecision& d : decisions) {
    out += "decision " + d.rule + " @ " + d.repository + "/" + d.wrapper +
           ": " + (d.accepted ? "accept " : "reject ") + d.expr + "\n";
  }
  for (const optimizer::PlanCandidate& c : candidates) {
    std::string flags;
    if (c.push_select) flags += " R1";
    if (c.push_project) flags += " R2";
    if (c.merge_joins) flags += " R3";
    if (c.bind_join) flags += " bind";
    if (flags.empty()) flags = " none";
    out += std::string("candidate") + (c.chosen ? " (chosen)" : "") + ":" +
           flags + ", net " + std::to_string(c.cost.net_s) + "s, rows " +
           std::to_string(c.cost.rows) + ", " + c.logical + "\n";
  }
  return out;
}

std::string Mediator::explain(const std::string& oql_text) const {
  return explain_report(oql_text).to_string();
}

Mediator::QueryTrace Mediator::begin_trace(const std::string& query_text) {
  if (tracer_ == nullptr) return {};
  QueryTrace qt;
  qt.trace = tracer_->start_query(query_text);
  qt.root = qt.trace->begin(0, "query", "mediator");
  qt.trace->tag(qt.root, "query", query_text);
  // Queries run by the session worker carry their session identity, so a
  // trace ring over a busy mediator tells initial runs from residual
  // resubmissions apart.
  const session::ResubmissionManager::ActiveRun run =
      session::ResubmissionManager::current_run();
  if (run.active) {
    qt.trace->tag(qt.root, "session.id", run.session_id);
    qt.trace->tag(qt.root, "session.resubmission",
                  static_cast<uint64_t>(run.resubmission));
  }
  return qt;
}

void Mediator::finish_query_trace(const QueryTrace& qt,
                                  const Answer& answer) {
  if (qt.trace == nullptr) return;
  obs::Trace& trace = *qt.trace;
  trace.tag(qt.root, "outcome",
            std::string(answer.complete() ? "complete" : "partial"));
  trace.tag(qt.root, "rows",
            static_cast<uint64_t>(answer.stats().run.rows_fetched));
  if (!answer.complete()) {
    trace.tag(qt.root, "residuals",
              static_cast<uint64_t>(answer.residuals().size()));
  }
  trace.end(qt.root);

  registry_->counter("mediator.queries").add();
  if (!answer.complete()) {
    registry_->counter("mediator.queries.partial").add();
  }
  obs::Span span;
  if (trace.find_span("parse", &span)) {
    registry_->histogram("stage.parse.seconds").observe(span.duration_s());
  }
  if (trace.find_span("optimize", &span)) {
    registry_->histogram("stage.optimize.seconds").observe(span.duration_s());
  }
  if (trace.find_span("execute", &span)) {
    registry_->histogram("stage.execute.seconds").observe(span.duration_s());
  }
  tracer_->finish(qt.trace);
}

obs::RegistrySnapshot Mediator::obs_snapshot() const {
  obs::RegistrySnapshot snap = registry_->snapshot();
  const exec::MetricsSnapshot m = exec_metrics_.snapshot();
  snap.counters["exec.dispatched"] = m.dispatched;
  snap.counters["exec.succeeded"] = m.succeeded;
  snap.counters["exec.failed"] = m.failed;
  snap.counters["exec.timed_out"] = m.timed_out;
  snap.counters["exec.retries"] = m.retries;
  snap.counters["exec.rows"] = m.rows;
  snap.counters["exec.short_circuits"] = m.short_circuits;
  snap.counters["exec.probes"] = m.probes;
  snap.counters["exec.queued"] = m.queued;
  snap.counters["exec.shed"] = m.shed;
  if (scheduler_ != nullptr) {
    const sched::SchedStats sched = scheduler_->totals();
    snap.counters["sched.admitted"] = sched.admitted;
    snap.counters["sched.queued_calls"] = sched.queued_calls;
    snap.counters["sched.shed"] = sched.shed;
    snap.counters["sched.in_flight"] = sched.in_flight;
    snap.counters["sched.queue_depth"] = sched.queued;
  }
  const session::ResubmissionManager::Stats s = sessions_->stats();
  snap.counters["session.submitted"] = s.submitted;
  snap.counters["session.completed"] = s.completed;
  snap.counters["session.failed"] = s.failed;
  snap.counters["session.cancelled"] = s.cancelled;
  snap.counters["session.resubmissions"] = s.resubmissions;
  snap.counters["health.tracked_sources"] = tracker_->tracked();
  snap.counters["health.probes"] = tracker_->total_probes();
  // Per-source circuit state and availability. Repository names are
  // free-form (quotes, backslashes, anything a DBA typed), so they rely
  // on RegistrySnapshot::to_json escaping every key.
  for (const std::string& name : tracker_->tracked_repositories()) {
    const session::SourceHealth h = tracker_->health(name);
    const std::string prefix = "health.source." + name;
    snap.counters[prefix + ".state"] = static_cast<uint64_t>(h.state);
    snap.counters[prefix + ".availability_ppm"] =
        static_cast<uint64_t>(h.availability * 1e6 + 0.5);
    snap.counters[prefix + ".failures"] = h.failures;
  }
  snap.counters["mediator.live_handles"] = live_handles();
  {
    const fedcat::SnapshotPtr fed = fedcat_.snapshot();
    snap.counters["fedcat.epoch"] = fed->epoch;
    snap.counters["fedcat.extents"] = fed->catalog.extent_count();
    snap.counters["fedcat.interfaces_indexed"] = fed->index.interface_count();
    snap.counters["fedcat.capability_shards"] = fed->index.shard_count();
    // Source-side gauges (e.g. memdb.rows_scanned / index_hits), summed
    // across every registered wrapper of the current epoch so federations
    // with several wrappers of one kind report one family.
    for (const auto& [name, wrapper] : fed->wrappers) {
      for (const auto& [gauge, value] : wrapper->stat_gauges()) {
        snap.counters[gauge] += value;
      }
    }
  }
  snap.counters["fedcat.live_epochs"] = fedcat_.live_epochs();
  snap.counters["fedcat.retired_epochs"] = fedcat_.retired_epochs();
  return snap;
}

}  // namespace disco
