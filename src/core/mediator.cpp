#include "core/mediator.hpp"

#include <chrono>
#include <optional>

#include "algebra/to_oql.hpp"
#include "common/error.hpp"
#include "odl/odl.hpp"
#include "oql/eval.hpp"
#include "oql/parser.hpp"
#include "oql/printer.hpp"
#include "physical/runtime.hpp"

namespace disco {

namespace {

/// RAII pairing of the shared admin-exclusion lock with the in-flight
/// query counter (the counter exists so admin errors can say how many).
struct QueryGate {
  QueryGate(std::shared_mutex& mutex, std::atomic<size_t>& counter)
      : lock(mutex), counter(&counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }
  ~QueryGate() { counter->fetch_sub(1, std::memory_order_relaxed); }
  std::shared_lock<std::shared_mutex> lock;
  std::atomic<size_t>* counter;
};

}  // namespace

Mediator::Mediator() : Mediator(Options{}) {}

Mediator::Mediator(Options options)
    : options_(std::move(options)), network_(options_.network_seed) {
  if (options_.exec.workers > 0) {
    pool_ = std::make_unique<exec::ThreadPool>(options_.exec.workers);
    dispatcher_ = std::make_unique<exec::ParallelDispatcher>(
        pool_.get(), &network_, options_.exec, &exec_metrics_);
  }

  // Health tracking (src/session/). The tracker's time base is simulated
  // seconds in both modes: the VirtualClock in virtual-time mode, wall
  // time divided by latency_scale in wall-clock mode — so cooldowns and
  // probe intervals mean the same thing everywhere.
  session::SourceHealthTracker::Clock health_clock;
  if (options_.exec.workers > 0) {
    const auto epoch = std::chrono::steady_clock::now();
    const double scale = options_.exec.latency_scale;
    health_clock = [epoch, scale] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           epoch)
                 .count() /
             scale;
    };
  } else {
    health_clock = [this] { return clock_.now(); };
  }
  tracker_ = std::make_unique<session::SourceHealthTracker>(
      options_.health, std::move(health_clock));
  if (dispatcher_ != nullptr) {
    // Wall-clock mode: every dispatched call's final outcome feeds the
    // tracker from the dispatcher threads. (Virtual-time mode feeds it
    // through ExecContext::report_health instead — see make_context.)
    dispatcher_->set_outcome_listener(
        [this](const std::string& endpoint,
               const exec::DispatchOutcome& outcome) {
          tracker_->on_outcome(endpoint, outcome.available,
                               outcome.latency_s);
        });
  }

  sessions_ = std::make_unique<session::ResubmissionManager>(
      [this](const std::string& text, double deadline_s) {
        QueryOptions q;
        q.deadline_s = deadline_s;
        return query(text, q);
      },
      options_.session);
  tracker_->set_listener([this](const std::string&, session::CircuitState,
                                session::CircuitState to) {
    // A circuit closed: some source came back — resubmit residuals now
    // instead of waiting out the retry interval.
    if (to == session::CircuitState::Closed) sessions_->notify_recovery();
  });

  if (options_.health.enabled && dispatcher_ != nullptr) {
    // Background half-open probes, priced like zero-row calls. Probe
    // latencies keep the §3.3 cost model warm while a source is dark:
    // successful probes are recorded under a sentinel expression, so the
    // per-repository average reflects the source's current round-trip
    // time the moment it recovers.
    static const algebra::LogicalPtr kProbeSignature =
        algebra::get("__health_probe", "p");
    prober_ = std::make_unique<session::Prober>(
        tracker_.get(), pool_.get(),
        options_.health.probe_interval_s * options_.exec.latency_scale,
        [this](const std::string& repository) {
          return dispatcher_->probe(repository, clock_.now(),
                                    options_.health.probe_deadline_s);
        },
        [this](const std::string& repository,
               const exec::DispatchOutcome& outcome) {
          if (outcome.available) {
            history_.record(repository, kProbeSignature, outcome.latency_s,
                            0);
          }
        });
  }
}

std::unique_lock<std::shared_mutex> Mediator::admin_lock(const char* what) {
  std::unique_lock lock(admin_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) {
    throw ExecutionError(
        std::string("cannot ") + what + " while " +
        std::to_string(active_queries_.load(std::memory_order_relaxed)) +
        " query(ies) are in flight: administration and queries must not "
        "overlap (define the federation first, then serve traffic)");
  }
  return lock;
}

void Mediator::register_wrapper(const std::string& name,
                                std::shared_ptr<wrapper::Wrapper> wrapper) {
  auto guard = admin_lock("register a wrapper");
  register_wrapper_locked(name, std::move(wrapper));
}

void Mediator::register_wrapper_locked(
    const std::string& name, std::shared_ptr<wrapper::Wrapper> wrapper) {
  internal_check(wrapper != nullptr, "null wrapper");
  if (wrappers_.contains(name)) {
    throw CatalogError("wrapper '" + name + "' is already defined");
  }
  wrappers_[name] = std::move(wrapper);
}

void Mediator::register_wrapper_factory(
    const std::string& constructor,
    std::function<std::shared_ptr<wrapper::Wrapper>()> factory) {
  auto guard = admin_lock("register a wrapper factory");
  internal_check(static_cast<bool>(factory), "null wrapper factory");
  factories_[constructor] = std::move(factory);
}

void Mediator::register_repository(catalog::Repository repository,
                                   net::LatencyModel latency,
                                   net::Availability availability) {
  auto guard = admin_lock("register a repository");
  register_repository_locked(std::move(repository), latency, availability);
}

void Mediator::register_repository_locked(catalog::Repository repository,
                                          net::LatencyModel latency,
                                          net::Availability availability) {
  net::Endpoint endpoint;
  endpoint.name = repository.name;
  endpoint.latency = latency;
  endpoint.availability = availability;
  catalog_.define_repository(std::move(repository));
  network_.add_endpoint(std::move(endpoint));
}

wrapper::Wrapper* Mediator::wrapper_by_name(const std::string& name) const {
  auto it = wrappers_.find(name);
  if (it == wrappers_.end()) {
    throw CatalogError("unknown wrapper '" + name + "'");
  }
  return it->second.get();
}

void Mediator::execute_odl(const std::string& text) {
  auto guard = admin_lock("execute ODL");
  for (const odl::Statement& statement : odl::parse_odl(text)) {
    if (const auto* interface_def = std::get_if<odl::InterfaceDef>(&statement)) {
      catalog_.types().define(interface_def->type);
    } else if (const auto* extent_def =
                   std::get_if<odl::ExtentDef>(&statement)) {
      // The wrapper object must exist so the optimizer can ask for its
      // capabilities.
      wrapper_by_name(extent_def->extent.wrapper);
      catalog_.define_extent(extent_def->extent);
    } else if (const auto* drop = std::get_if<odl::DropExtent>(&statement)) {
      catalog_.drop_extent(drop->name);
    } else if (const auto* view_def =
                   std::get_if<odl::ViewDefStmt>(&statement)) {
      catalog_.define_view(view_def->name, view_def->query);
    } else if (const auto* assignment =
                   std::get_if<odl::Assignment>(&statement)) {
      if (assignment->constructor == "Repository") {
        catalog::Repository repository;
        repository.name = assignment->var;
        for (const auto& [key, value] : assignment->args) {
          if (key == "host") {
            repository.host = value;
          } else if (key == "name") {
            repository.db_name = value;
          } else if (key == "address") {
            repository.address = value;
          } else {
            throw CatalogError("Repository has no attribute '" + key + "'");
          }
        }
        register_repository_locked(std::move(repository),
                                   options_.default_latency,
                                   net::Availability{});
      } else {
        auto factory = factories_.find(assignment->constructor);
        if (factory == factories_.end()) {
          throw CatalogError("unknown constructor '" +
                             assignment->constructor + "'");
        }
        register_wrapper_locked(assignment->var, factory->second());
      }
    }
  }
}

optimizer::Optimizer Mediator::make_optimizer() const {
  optimizer::Optimizer opt(
      &catalog_,
      [this](const std::string& name) { return wrapper_by_name(name); },
      &history_, options_.optimizer);
  if (options_.health.enabled) {
    // Health-aware costing: plans leaning on open-circuit or flaky
    // sources price their expected retries (availability 0 while Open).
    opt.set_health([this](const std::string& repository) {
      return tracker_->availability(repository);
    });
  }
  return opt;
}

physical::ExecContext Mediator::make_context(
    const oql::CollectionResolver* resolver, double deadline_s) {
  physical::ExecContext context;
  context.catalog = &catalog_;
  context.network = &network_;
  context.clock = &clock_;
  context.wrapper_by_name = [this](const std::string& name) {
    return wrapper_by_name(name);
  };
  context.resolver = resolver;
  context.dispatcher = dispatcher_.get();
  context.deadline_s = deadline_s;
  context.validate_rows = options_.validate_source_rows;
  context.record_exec = [this](const std::string& repository,
                               const algebra::LogicalPtr& remote,
                               double time_s, size_t rows) {
    history_.record(repository, remote, time_s, rows);
  };
  if (options_.health.enabled) {
    context.admit_source = [this](const std::string& repository) {
      bool admitted = tracker_->admit(repository);
      if (!admitted) exec_metrics_.on_short_circuit();
      return admitted;
    };
  }
  if (dispatcher_ == nullptr) {
    // Virtual-time mode has no dispatcher outcome listener; the runtime
    // reports each finished source call here. Health is tracked even
    // when breaking is disabled (passive monitoring).
    context.report_health = [this](const std::string& repository,
                                   bool available, double latency_s) {
      tracker_->on_outcome(repository, available, latency_s);
    };
  }
  return context;
}

Answer Mediator::query(const std::string& oql_text, QueryOptions options) {
  QueryGate gate(admin_mutex_, active_queries_);
  if (!options_.enable_plan_cache) {
    return query_impl(oql::parse(oql_text), options);
  }
  // §3.3: cached plans are recomputed when the catalog changes — and when
  // cost observations materially move the learned model, so a plan chosen
  // with the 0/1 default does not outlive the first real measurements.
  const uint64_t catalog_version = catalog_.version();
  const uint64_t history_version = history_.version();
  std::optional<optimizer::Optimizer::Result> planned;
  {
    std::unique_lock lock(plan_cache_mutex_);
    if (plan_cache_catalog_version_ != catalog_version ||
        plan_cache_history_version_ != history_version) {
      plan_cache_.clear();
      plan_cache_catalog_version_ = catalog_version;
      plan_cache_history_version_ = history_version;
      ++plan_cache_stats_.invalidations;
    }
    auto it = plan_cache_.find(oql_text);
    if (it != plan_cache_.end()) {
      ++plan_cache_stats_.hits;
      planned = it->second;  // cheap: shared subtrees
    } else {
      ++plan_cache_stats_.misses;
    }
  }
  if (!planned) {
    planned = make_optimizer().optimize(oql::parse(oql_text));
    std::unique_lock lock(plan_cache_mutex_);
    // Cache only if the world did not move while we optimized; a stale
    // insert would serve outdated plans to later queries.
    if (plan_cache_catalog_version_ == catalog_version &&
        plan_cache_history_version_ == history_version) {
      plan_cache_.emplace(oql_text, *planned);
    }
  }
  return run_planned(*planned, options);
}

Answer Mediator::query(const oql::ExprPtr& query_expr,
                       QueryOptions options) {
  QueryGate gate(admin_mutex_, active_queries_);
  return query_impl(query_expr, options);
}

Answer Mediator::query_impl(const oql::ExprPtr& query_expr,
                            QueryOptions options) {
  optimizer::Optimizer::Result planned =
      make_optimizer().optimize(query_expr);
  return run_planned(planned, options);
}

session::QueryHandle Mediator::submit(const std::string& oql_text,
                                      QueryOptions options) {
  return sessions_->submit(oql_text, options.deadline_s);
}

Answer Mediator::run_planned(const optimizer::Optimizer::Result& planned,
                             QueryOptions options) {

  QueryStats stats;
  stats.plans_considered = planned.plans_considered;
  stats.estimated = planned.estimated;
  stats.local_mode = planned.plan == nullptr;

  // Materialize auxiliary collections (extents referenced from nested
  // subqueries, or everything in local mode). If any auxiliary source is
  // unavailable, the whole query is the residual answer — finer-grained
  // partial evaluation only applies to the main plan's branches.
  oql::MapResolver resolver;
  bool aux_incomplete = false;
  auto materialize = [&](const std::vector<std::pair<
                             std::string, physical::PhysicalPtr>>& plans,
                         bool closure) {
    for (const auto& [name, plan] : plans) {
      physical::Runtime runtime(make_context(nullptr, options.deadline_s));
      physical::RunResult run = runtime.run(plan);
      stats.run.exec_calls += run.stats.exec_calls;
      stats.run.unavailable_calls += run.stats.unavailable_calls;
      stats.run.short_circuit_calls += run.stats.short_circuit_calls;
      stats.run.rows_fetched += run.stats.rows_fetched;
      stats.run.retry_attempts += run.stats.retry_attempts;
      stats.run.elapsed_s += run.stats.elapsed_s;
      if (!run.complete()) {
        aux_incomplete = true;
        continue;
      }
      if (closure) {
        resolver.bind_closure(name, run.data);
      } else {
        resolver.bind(name, run.data);
      }
    }
  };
  materialize(planned.aux, false);
  materialize(planned.aux_closures, true);
  if (aux_incomplete) {
    return Answer::partial_answer(Value::bag({}), {planned.expanded},
                                  std::move(stats));
  }

  if (planned.plan == nullptr) {
    // Local mode: the mediator evaluates the expression itself over the
    // materialized collections.
    Value data = oql::Evaluator(&resolver).eval(planned.local);
    return Answer::complete_answer(std::move(data), std::move(stats));
  }

  physical::Runtime runtime(make_context(&resolver, options.deadline_s));
  physical::RunResult run = runtime.run(planned.plan);
  stats.run.exec_calls += run.stats.exec_calls;
  stats.run.unavailable_calls += run.stats.unavailable_calls;
  stats.run.short_circuit_calls += run.stats.short_circuit_calls;
  stats.run.rows_fetched += run.stats.rows_fetched;
  stats.run.retry_attempts += run.stats.retry_attempts;
  stats.run.elapsed_s += run.stats.elapsed_s;

  if (run.complete()) {
    return Answer::complete_answer(std::move(run.data), std::move(stats));
  }
  // §4: transform the unfinished physical parts back into OQL.
  std::vector<oql::ExprPtr> residuals;
  residuals.reserve(run.residuals.size());
  for (const algebra::LogicalPtr& residual : run.residuals) {
    residuals.push_back(algebra::reconstruct(residual));
  }
  return Answer::partial_answer(std::move(run.data), std::move(residuals),
                                std::move(stats));
}

std::string Mediator::explain(const std::string& oql_text) const {
  optimizer::Optimizer opt = make_optimizer();
  optimizer::Optimizer::Result planned = opt.optimize(oql::parse(oql_text));
  std::string out;
  out += "expanded: " + oql::to_oql(planned.expanded) + "\n";
  for (const auto& [name, plan] : planned.aux) {
    out += "aux " + name + ": " + physical::to_physical_string(plan) + "\n";
  }
  for (const auto& [name, plan] : planned.aux_closures) {
    out += "aux " + name + "*: " + physical::to_physical_string(plan) + "\n";
  }
  if (planned.plan == nullptr) {
    out += "mode: local evaluation\n";
    return out;
  }
  out += "plan: " + physical::to_physical_string(planned.plan) + "\n";
  out += "plans considered: " + std::to_string(planned.plans_considered) +
         "\n";
  out += "estimated: net " + std::to_string(planned.estimated.net_s) +
         "s, cpu " + std::to_string(planned.estimated.cpu_s) + "s, rows " +
         std::to_string(planned.estimated.rows) + "\n";
  return out;
}

}  // namespace disco
