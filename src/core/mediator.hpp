// The DISCO mediator (M in Figure 1) — the paper's primary contribution.
//
// One Mediator bundles the Prototype-0 pipeline of Figure 2: the ODL/OQL
// parsers, the internal database (catalog), the query optimizer, the
// run-time system, and the bindings to wrapper objects. It talks to data
// sources through wrappers over the simulated network, learns per-source
// costs (§3.3), and returns Answers with partial-evaluation semantics
// (§4).
//
// Typical setup (see examples/quickstart.cpp):
//
//   disco::Mediator m;
//   m.register_wrapper_factory("WrapperMiniSql", [&] { ... });
//   m.execute_odl(R"(
//     interface Person (extent person) {
//       attribute String name;
//       attribute Short salary; };
//     r0 := Repository(host="rodin", name="db", address="123.45.6.7");
//     w0 := WrapperMiniSql();
//     extent person0 of Person wrapper w0 repository r0;
//   )");
//   disco::Answer a = m.query("select x.name from x in person");
//
// Concurrency: query() is safe to call from many threads at once —
// the plan cache sits under a shared_mutex, CostHistory and the network
// are internally synchronized, and with Options::exec.workers > 0 the
// source calls of each plan fan out across one shared thread pool.
// Administration (execute_odl, register_*) is concurrent with queries:
// the federation catalog lives in epoch-numbered immutable snapshots
// (src/fedcat/). Every query pins the snapshot current at its start and
// runs against it to completion; each admin call builds the next
// snapshot aside and atomically publishes it. Mid-query registration
// neither blocks nor corrupts — running queries keep answering from the
// epoch they started in, later queries see the new world, and an old
// epoch is retired when its last query drains. Concurrent admin calls
// serialize against each other (blocking, not throwing).
//
// Resilience (src/session/): every source-call outcome feeds a
// SourceHealthTracker. With Options::health.enabled the tracker's
// circuit breakers short-circuit calls to dark sources (partial answers
// with zero wait instead of a timeout), a background prober re-tests
// open circuits, and the optimizer penalizes plans leaning on unhealthy
// sources. submit() returns a QueryHandle whose partial answer finishes
// itself as sources recover.
#pragma once

#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "cache/result_cache.hpp"
#include "catalog/catalog.hpp"
#include "core/answer.hpp"
#include "exec/dispatcher.hpp"
#include "exec/metrics.hpp"
#include "exec/thread_pool.hpp"
#include "fedcat/snapshot.hpp"
#include "net/network.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "optimizer/cost.hpp"
#include "optimizer/optimizer.hpp"
#include "sched/scheduler.hpp"
#include "session/health.hpp"
#include "session/session.hpp"
#include "vec/batch.hpp"
#include "wrapper/wrapper.hpp"

namespace disco {

/// Per-query knobs.
struct QueryOptions {
  /// §4's designated time: calls slower than this are classified
  /// unavailable and the answer becomes partial.
  double deadline_s = std::numeric_limits<double>::infinity();
};

class Mediator {
 public:
  struct Options {
    uint64_t network_seed = 1;
    optimizer::OptimizerOptions optimizer;
    /// Network model for repositories defined through ODL assignments.
    net::LatencyModel default_latency;
    /// §2.1 run-time type checking: validate every row wrappers return
    /// against the extent's interface. Off by default (costs a pass over
    /// every fetched row).
    bool validate_source_rows = false;
    /// Reuse optimized plans for repeated query texts. Invalidated by any
    /// catalog change (§3.3: "the mediator must monitor updates to
    /// extents, and modify or recompute plans") and by material
    /// cost-history updates, so cached plans are re-optimized once real
    /// cost observations arrive.
    bool enable_plan_cache = false;
    /// Concurrent executor (src/exec/): workers == 0 keeps the paper's
    /// deterministic sequential virtual-time simulation; workers >= 1
    /// switches to wall-clock mode — source calls fan out over a thread
    /// pool with per-call deadlines and retry-with-backoff.
    exec::ExecOptions exec;
    /// Circuit breakers + background probing (src/session/). Health is
    /// always *tracked*; set health.enabled to also short-circuit calls
    /// to open circuits and run the half-open prober.
    session::HealthOptions health;
    /// Background completion of partial answers (Mediator::submit()).
    session::SessionOptions session;
    /// Query tracing (src/obs/). Off by default: with obs.enabled false
    /// no tracer is allocated and every instrumentation site in the
    /// pipeline reduces to a single null-pointer check.
    obs::ObsOptions obs;
    /// Submit-result cache + single-flight coalescing (src/cache/). Off
    /// by default — the §4 semantics fetches from the sources on every
    /// query. With cache.enabled, successful submit replies are memoized
    /// (LRU under cache.max_bytes, per-entry cache.ttl_s in simulated
    /// seconds) and concurrent identical submits coalesce onto one
    /// source call. Invalidated on any catalog change, on circuit-state
    /// transitions, and by invalidate_cache().
    cache::CacheOptions cache;
    /// Per-source admission control & fair scheduling (src/sched/). Off
    /// by default. With sched.enabled (and exec.workers > 0), every
    /// source call first acquires that endpoint's token: at most
    /// sched.per_endpoint_limit calls (0 = exec.workers; overridable per
    /// repository via sched.limits) are in flight per source, excess
    /// calls wait in a bounded fair queue (round-robin across queries),
    /// and overload sheds calls into §4 residuals that complete later by
    /// resubmission. Virtual-time mode (workers == 0) never needs it:
    /// calls there are sequential by construction.
    sched::SchedOptions sched;
    /// Columnar batch execution (src/vec/). Off by default — the
    /// row-at-a-time path is the reference semantics. With vec.enabled,
    /// flat answer bags convert to typed column batches at the exec/const
    /// leaves and filter/project/hash-join/union/aggregate run batch-wise
    /// (per-operator row fallback otherwise), the optimizer implements
    /// batchable equi joins as hash joins, and explain_report() lists
    /// which operators will run vectorized. Answers are bag-equal either
    /// way and virtual-time determinism is preserved
    /// (tests/test_vec_differential.cpp).
    vec::VecOptions vec;
  };

  Mediator();
  explicit Mediator(Options options);

  // -- component access (the internal db, the simulated world) -------------
  /// The *current* epoch's catalog. Read-only: mutations go through
  /// execute_odl / register_* so they publish a fresh epoch. The
  /// reference is stable until the next admin call — code that may race
  /// with administration pins catalog_snapshot() instead.
  const catalog::Catalog& catalog() const {
    return fedcat_.current_catalog();
  }
  /// Pins the current federation epoch (catalog + wrappers + extent
  /// index); holding it keeps that epoch alive across admin swaps.
  fedcat::SnapshotPtr catalog_snapshot() const { return fedcat_.snapshot(); }
  /// Current catalog generation, and how many epochs are still pinned by
  /// draining queries / have fully drained.
  uint64_t catalog_epoch() const { return fedcat_.epoch(); }
  size_t live_epochs() const { return fedcat_.live_epochs(); }
  uint64_t retired_epochs() const { return fedcat_.retired_epochs(); }
  net::Network& network() { return network_; }
  net::VirtualClock& clock() { return clock_; }
  optimizer::CostHistory& cost_history() { return history_; }

  // -- administration (the DBA interface, §2) --------------------------------
  /// Executes ODL text: interface / extent / define / assignments.
  /// `x := Repository(...)` defines a repository and a network endpoint;
  /// `x := SomeCtor(...)` instantiates a wrapper via a registered factory.
  void execute_odl(const std::string& text);

  /// Binds a wrapper object to a name (the programmatic alternative to
  /// `w0 := WrapperMiniSql();`).
  void register_wrapper(const std::string& name,
                        std::shared_ptr<wrapper::Wrapper> wrapper);
  /// Registers a constructor usable from ODL assignments.
  void register_wrapper_factory(
      const std::string& constructor,
      std::function<std::shared_ptr<wrapper::Wrapper>()> factory);

  /// Defines a repository and its network endpoint in one step.
  void register_repository(catalog::Repository repository,
                           net::LatencyModel latency = {},
                           net::Availability availability = {});

  wrapper::Wrapper* wrapper_by_name(const std::string& name) const;

  // -- querying (§3, §4) ------------------------------------------------------
  Answer query(const std::string& oql_text, QueryOptions options = {});
  Answer query(const oql::ExprPtr& query, QueryOptions options = {});

  // -- asynchronous sessions (src/session/) ----------------------------------
  /// Submits a query for background execution and returns immediately.
  /// The handle's snapshot() is the current best (§4 partial) answer;
  /// the ResubmissionManager re-executes the residuals as sources
  /// recover until the answer is complete. The handle is also retained
  /// in the mediator's registry under its id, so out-of-process clients
  /// (src/server/) can poll/cancel by id alone. Thread-safe.
  session::QueryHandle submit(const std::string& oql_text,
                              QueryOptions options = {});

  /// Looks up a registered handle by query id; !valid() when the id is
  /// unknown (never registered, or already released). Thread-safe.
  session::QueryHandle find_handle(uint64_t query_id) const;

  /// Cancels the registered session with this id and releases it from
  /// the registry: pending resubmissions are dropped (settled callbacks
  /// fire with Cancelled) and no tokens or cache leader tickets stay
  /// held on its behalf. Returns false for unknown ids. Thread-safe.
  bool cancel(uint64_t query_id);

  /// Drops a handle from the registry without cancelling the session
  /// (a client that fetched its complete answer and is done with the
  /// id). Returns false for unknown ids. Thread-safe.
  bool release_handle(uint64_t query_id);

  /// Handles currently retained in the registry (any state; terminal
  /// handles are swept opportunistically on submit()).
  size_t live_handles() const;

  /// Per-repository circuit-breaker state and EWMA health.
  session::SourceHealthTracker& health_tracker() { return *tracker_; }
  const session::SourceHealthTracker& health_tracker() const {
    return *tracker_;
  }
  session::SourceHealth source_health(const std::string& repository) const {
    return tracker_->health(repository);
  }
  /// Background-completion counters (submitted/completed/resubmissions).
  session::ResubmissionManager::Stats session_stats() const {
    return sessions_->stats();
  }

  // -- explain & trace (src/obs/) --------------------------------------------
  /// Structured optimizer report for one query text: the chosen logical/
  /// physical plan, every capability-grammar pushdown decision (accepted
  /// or rejected), every costed alternative, and the §3.3 learned cost
  /// estimate per submit. Does not execute the query.
  struct ExplainReport {
    /// One source call the chosen plan will issue.
    struct Submit {
      std::string repository;
      std::string wrapper;
      std::string remote;  ///< shipped expression (algebra text)
      bool bind_join = false;
      /// A fresh cache entry holds this submit's answer right now — the
      /// call would be served from the cache, not the source.
      bool cached = false;
      optimizer::CostHistory::Estimate learned;
    };

    std::string query;
    std::string expanded;  ///< view-expanded OQL
    bool local_mode = false;
    std::string plan;  ///< physical plan text; empty in local mode
    optimizer::Cost estimated;
    size_t plans_considered = 0;
    /// Federation-scale pruning counters: how much of the registered
    /// extent world planning touched, and what the grammar memo / shape
    /// sharing saved (src/fedcat/).
    optimizer::PruneStats prune;
    std::vector<Submit> submits;
    std::vector<optimizer::PushdownDecision> decisions;
    std::vector<optimizer::PlanCandidate> candidates;
    /// Auxiliary materialization plans: (name, plan text); closures are
    /// suffixed '*'.
    std::vector<std::pair<std::string, std::string>> aux;
    /// Batch execution (Options::vec) is on for this mediator.
    bool vec = false;
    /// Which plan operators will run vectorized ("filter", "project",
    /// "hash join", "union", ...) vs fall back ("merge join (row path)"),
    /// from a static walk of the chosen plan against the catalog's
    /// interfaces. Empty when vec is off or the query runs in local mode.
    std::vector<std::string> vec_ops;

    std::string to_string() const;
  };
  ExplainReport explain_report(const std::string& oql_text) const;

  /// Optimizer output for a query: chosen physical plan, cost estimate,
  /// alternatives considered, per-submit pushdown decisions and learned
  /// costs. The printable form of explain_report(). For debugging and
  /// the benches.
  std::string explain(const std::string& oql_text) const;

  /// The tracer, or null when Options::obs.enabled is false.
  obs::Tracer* tracer() { return tracer_.get(); }
  /// Most recently finished query trace (null when tracing is off or no
  /// query ran yet).
  std::shared_ptr<const obs::Trace> last_trace() const {
    return tracer_ != nullptr ? tracer_->last() : nullptr;
  }
  /// The counter/histogram registry this mediator reports into
  /// (Options::obs.registry or the process-wide default).
  obs::Registry& obs_registry() const { return *registry_; }
  /// One consistent snapshot unifying the obs registry with the
  /// executor's Metrics, the session manager's stats and per-source
  /// health — the single pane of glass for a mediator under load.
  obs::RegistrySnapshot obs_snapshot() const;

  struct PlanCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
  };
  /// Snapshot (the counters move concurrently under load).
  PlanCacheStats plan_cache_stats() const {
    std::shared_lock lock(plan_cache_mutex_);
    return plan_cache_stats_;
  }

  // -- result cache (src/cache/) ---------------------------------------------
  /// Drops every cached submit result (explicit refresh — e.g. the
  /// operator knows a source reloaded). No-op when the cache is off.
  void invalidate_cache() {
    if (result_cache_ != nullptr) result_cache_->invalidate_all();
  }
  /// Hit/coalesced/miss/eviction counters plus current size; zeroes when
  /// the cache is off.
  cache::CacheStats cache_stats() const {
    return result_cache_ != nullptr ? result_cache_->stats()
                                    : cache::CacheStats{};
  }
  /// cache_stats() plus the per-entry inventory as one JSON object
  /// (repository names and remote algebra text are escaped — they may
  /// contain quotes and backslashes). `{"enabled":false}` when off.
  std::string cache_stats_json() const {
    return result_cache_ != nullptr ? result_cache_->stats_json()
                                    : std::string("{\"enabled\":false}");
  }
  /// The cache itself, or null when Options::cache.enabled is false.
  cache::ResultCache* result_cache() { return result_cache_.get(); }

  /// Aggregated per-endpoint network counters across the whole
  /// federation — one number stream for load tests instead of polling
  /// every repository. Thread-safe.
  net::TrafficStats traffic_stats() const { return network_.total_stats(); }

  /// Concurrent-executor counters (zeroes when exec.workers == 0).
  exec::MetricsSnapshot exec_metrics() const {
    return exec_metrics_.snapshot();
  }

  // -- admission control (src/sched/) ----------------------------------------
  /// The scheduler, or null when Options::sched.enabled is false (or
  /// exec.workers == 0 — virtual-time mode never schedules).
  sched::QueryScheduler* scheduler() { return scheduler_.get(); }
  /// Aggregate admission counters across every endpoint; zeroes when the
  /// scheduler is off.
  sched::SchedStats sched_stats() const {
    return scheduler_ != nullptr ? scheduler_->totals() : sched::SchedStats{};
  }
  /// One endpoint's admission counters; zeroes when the scheduler is off.
  sched::EndpointSchedStats sched_stats(const std::string& repository) const {
    return scheduler_ != nullptr ? scheduler_->endpoint_stats(repository)
                                 : sched::EndpointSchedStats{};
  }

 private:
  /// One query's live trace: the Trace plus its root span. Empty (null
  /// trace) when tracing is disabled — every helper below checks once.
  struct QueryTrace {
    std::shared_ptr<obs::Trace> trace;
    uint64_t root = 0;
    obs::ObsContext obs() const { return {trace.get(), root}; }
  };
  /// Mints a trace with an open root "query" span (tagged with the text
  /// and, when running inside a session resubmission, the session id);
  /// empty when tracing is off.
  QueryTrace begin_trace(const std::string& query_text);
  /// Closes the root span, tags the outcome, feeds the stage histograms
  /// and query counters into the registry, and retains the trace.
  void finish_query_trace(const QueryTrace& qt, const Answer& answer);

  /// The query pipeline under one pinned snapshot: every stage below
  /// plans and executes against `snap`'s epoch, so a concurrent
  /// registration can never change the world out from under a running
  /// query. The lambdas handed to the optimizer / runtime capture the
  /// SnapshotPtr by value, which is what keeps the epoch alive.
  Answer query_impl(const fedcat::SnapshotPtr& snap,
                    const oql::ExprPtr& query, QueryOptions options,
                    const QueryTrace& qt);
  /// Optimizes under an "optimize" span (plan tags, candidate events).
  optimizer::Optimizer::Result optimize_traced(
      const fedcat::SnapshotPtr& snap, const oql::ExprPtr& query,
      const QueryTrace& qt) const;
  Answer run_planned(const fedcat::SnapshotPtr& snap,
                     const optimizer::Optimizer::Result& planned,
                     QueryOptions options, const QueryTrace& qt);
  optimizer::Optimizer make_optimizer(const fedcat::SnapshotPtr& snap) const;
  optimizer::Optimizer make_optimizer(
      const fedcat::SnapshotPtr& snap,
      optimizer::OptimizerOptions options) const;
  physical::ExecContext make_context(const fedcat::SnapshotPtr& snap,
                                     const oql::CollectionResolver* resolver,
                                     double deadline_s,
                                     obs::ObsContext obs = {});
  /// Epoch-scoped cache invalidation: drops only what an admin update
  /// declared it touched (types changed -> everything; otherwise the
  /// affected repositories' entries).
  void apply_invalidation(const fedcat::UpdateScope& scope);

  Options options_;
  /// The federation catalog: epoch snapshots of (catalog, wrappers,
  /// extent index). See src/fedcat/snapshot.hpp.
  fedcat::CatalogManager fedcat_;
  net::Network network_;
  net::VirtualClock clock_;
  optimizer::CostHistory history_;
  /// ODL constructors. Not part of the snapshot: factories are mediator
  /// configuration, not federation state — a query never consults them.
  mutable std::mutex factories_mutex_;
  std::unordered_map<std::string,
                     std::function<std::shared_ptr<wrapper::Wrapper>()>>
      factories_;

  // Observability (src/obs/). registry_ is never null (Options::obs's
  // sink or the process-global registry); tracer_ is allocated only when
  // Options::obs.enabled — its nullness IS the disabled fast path.
  obs::Registry* registry_ = nullptr;
  std::unique_ptr<obs::Tracer> tracer_;

  // Concurrent executor (Options::exec.workers > 0); shared by every
  // query so the pool bounds total source-call parallelism.
  exec::Metrics exec_metrics_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::unique_ptr<exec::ParallelDispatcher> dispatcher_;

  // Handle registry: every submit()'s QueryHandle retained by id so
  // network clients can poll/cancel without holding the handle object.
  // Swept of terminal handles once it outgrows a soft cap.
  mutable std::mutex handles_mutex_;
  std::unordered_map<uint64_t, session::QueryHandle> handles_;

  // Per-source admission control (Options::sched.enabled and wall-clock
  // mode only); shared by every query and by session resubmissions.
  std::unique_ptr<sched::QueryScheduler> scheduler_;
  /// Fair-queue identity for the scheduler: one fresh id per top-level
  /// run (query / submit / resubmission round).
  std::atomic<uint64_t> next_query_id_{0};

  // Submit-result cache (Options::cache.enabled); shared by every query
  // and by the session worker's resubmissions, so it must outlive the
  // session subsystem below (destroyed after it).
  std::unique_ptr<cache::ResultCache> result_cache_;

  // Plan cache (Options::enable_plan_cache), shared across concurrent
  // queries. Invalidated when the catalog epoch *or* the cost-history
  // version moves, so §3.3's "recompute plans that are affected" also
  // covers fresh cost observations.
  mutable std::shared_mutex plan_cache_mutex_;
  mutable std::unordered_map<std::string, optimizer::Optimizer::Result>
      plan_cache_;
  mutable uint64_t plan_cache_epoch_ = 0;
  mutable uint64_t plan_cache_history_version_ = 0;
  mutable PlanCacheStats plan_cache_stats_;

  // Session subsystem (src/session/). Declared last on purpose —
  // destroyed first, in order: sessions_ (its worker runs queries
  // against everything above), then prober_ (submits probe jobs to
  // pool_ and reports into tracker_), then tracker_.
  std::unique_ptr<session::SourceHealthTracker> tracker_;
  std::unique_ptr<session::Prober> prober_;
  std::unique_ptr<session::ResubmissionManager> sessions_;
};

}  // namespace disco
