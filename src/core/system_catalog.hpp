// The catalog component — C in Figure 1.
//
// "special mediators, catalogs, (C), keep track of collections of
//  databases, wrappers, and mediators in the system. Catalogs do not
//  have total knowledge of all elements of the system; however, they
//  provide an overview of the entire system." (§1.1)
//
// A SystemCatalog registers mediators and exposes the federation's
// meta-data as queryable OQL collections — a catalog *is* a kind of
// mediator whose data sources are other mediators' catalogs:
//
//   mediators    bag of struct(name)
//   extents      bag of struct(mediator, name, interface, wrapper,
//                              repository)
//   types        bag of struct(mediator, name, super, implicit_extent)
//   repositories bag of struct(mediator, name, host, db, address)
//
// Registration records a pointer, not a snapshot: queries always see the
// mediators' current state ("Catalogs do not have total knowledge" — they
// hold no copies to go stale).
#pragma once

#include <string>
#include <vector>

#include "core/mediator.hpp"

namespace disco {

class SystemCatalog {
 public:
  /// Registers a mediator under a unique name. The mediator must outlive
  /// the catalog. Throws CatalogError on duplicates.
  void register_mediator(const std::string& name, Mediator* mediator);

  std::vector<std::string> mediator_names() const;
  Mediator* mediator(const std::string& name) const;

  /// Mediators that export the given interface type.
  std::vector<std::string> mediators_serving_type(
      const std::string& type) const;
  /// Mediators with at least one extent whose interface provides every
  /// attribute in `attributes` (a structural capability search).
  std::vector<std::string> mediators_providing_attributes(
      const std::vector<std::string>& attributes) const;

  /// Evaluates an OQL query over the catalog collections listed in the
  /// file comment. The catalog speaks the same language as everything
  /// else in the system.
  Value query(const std::string& oql_text) const;

  /// The full federation overview: one row per (mediator, extent).
  Value system_overview() const;

 private:
  std::vector<std::pair<std::string, Mediator*>> mediators_;
};

}  // namespace disco
