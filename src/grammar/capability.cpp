#include "grammar/capability.hpp"

#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace disco::grammar {

const char* to_string(Terminal terminal) {
  switch (terminal) {
    case Terminal::Get:
      return "get";
    case Terminal::Project:
      return "project";
    case Terminal::Select:
      return "select";
    case Terminal::Join:
      return "join";
    case Terminal::Open:
      return "OPEN";
    case Terminal::Close:
      return "CLOSE";
    case Terminal::Attribute:
      return "ATTRIBUTE";
    case Terminal::Predicate:
      return "PREDICATE";
    case Terminal::EqPredicate:
      return "EQPREDICATE";
    case Terminal::Comma:
      return "COMMA";
    case Terminal::Source:
      return "SOURCE";
    case Terminal::Path:
      return "PATH";
    case Terminal::PathEqPredicate:
      return "PATHEQPREDICATE";
    case Terminal::PathPredicate:
      return "PATHPREDICATE";
  }
  return "?";
}

namespace {

std::optional<Terminal> terminal_from_name(const std::string& name) {
  if (name == "get") return Terminal::Get;
  if (name == "project") return Terminal::Project;
  if (name == "select") return Terminal::Select;
  if (name == "join") return Terminal::Join;
  if (name == "OPEN") return Terminal::Open;
  if (name == "CLOSE") return Terminal::Close;
  if (name == "ATTRIBUTE") return Terminal::Attribute;
  if (name == "PREDICATE") return Terminal::Predicate;
  if (name == "EQPREDICATE") return Terminal::EqPredicate;
  if (name == "COMMA") return Terminal::Comma;
  if (name == "SOURCE") return Terminal::Source;
  if (name == "PATH") return Terminal::Path;
  if (name == "PATHEQPREDICATE") return Terminal::PathEqPredicate;
  if (name == "PATHPREDICATE") return Terminal::PathPredicate;
  return std::nullopt;
}

/// Scan-time subsumption: a grammar symbol matches its own token plus
/// every token that denotes a *special case* of it. An equality-only
/// predicate is a predicate; a flat attribute is a (degenerate) path; a
/// flat predicate is a path predicate with depth-1 paths. The reverse
/// never holds — PREDICATE does not match PATHPREDICATE tokens, so flat
/// wrappers never receive nested paths.
bool scan_matches(Terminal symbol, Terminal token) {
  if (symbol == token) return true;
  switch (symbol) {
    case Terminal::Predicate:
      return token == Terminal::EqPredicate;
    case Terminal::Path:
      return token == Terminal::Attribute;
    case Terminal::PathEqPredicate:
      return token == Terminal::EqPredicate;
    case Terminal::PathPredicate:
      return token == Terminal::PathEqPredicate ||
             token == Terminal::Predicate || token == Terminal::EqPredicate;
    default:
      return false;
  }
}

}  // namespace

Grammar::Grammar(std::string start, std::vector<Production> productions)
    : start_(std::move(start)), productions_(std::move(productions)) {
  for (const Production& production : productions_) {
    internal_check(!production.head.empty(), "production with empty head");
  }
}

Grammar Grammar::parse(const std::string& text) {
  std::vector<Production> productions;
  std::string start;
  for (const std::string& raw_line : split(text, '\n')) {
    std::string line = trim(raw_line);
    if (line.empty() || line.starts_with("//")) continue;
    size_t sep = line.find(":-");
    if (sep == std::string::npos) {
      throw ParseError("grammar production missing ':-': " + line, 1, 1);
    }
    std::string head = trim(line.substr(0, sep));
    if (head.empty() || terminal_from_name(head).has_value()) {
      throw ParseError("invalid production head: '" + head + "'", 1, 1);
    }
    Production production;
    production.head = head;
    std::istringstream body(line.substr(sep + 2));
    std::string word;
    while (body >> word) {
      if (word == ",") {
        production.body.push_back(Symbol::t(Terminal::Comma));
      } else if (word == "(") {
        production.body.push_back(Symbol::t(Terminal::Open));
      } else if (word == ")") {
        production.body.push_back(Symbol::t(Terminal::Close));
      } else if (auto terminal = terminal_from_name(word)) {
        production.body.push_back(Symbol::t(*terminal));
      } else {
        production.body.push_back(Symbol::nt(word));
      }
    }
    if (start.empty()) start = production.head;
    productions.push_back(std::move(production));
  }
  if (start.empty()) {
    throw ParseError("empty grammar", 1, 1);
  }
  return Grammar(std::move(start), std::move(productions));
}

std::string Grammar::to_text() const {
  std::string out;
  for (const Production& production : productions_) {
    out += production.head + " :-";
    for (const Symbol& symbol : production.body) {
      out += ' ';
      out += symbol.is_terminal ? to_string(symbol.terminal)
                                : symbol.nonterminal.c_str();
    }
    out += '\n';
  }
  return out;
}

// Earley recognizer. Grammars are tiny (a handful of productions) and
// sentences short (tens of tokens), so the cubic worst case is irrelevant;
// Earley is chosen because it handles any CFG a wrapper might return,
// including ambiguous and left-recursive ones.
bool Grammar::recognizes(const std::vector<Terminal>& tokens) const {
  struct Item {
    size_t production;  // index into productions_
    size_t dot;         // position in body
    size_t origin;      // chart index where this item started
    bool operator==(const Item& other) const = default;
  };
  size_t n = tokens.size();
  std::vector<std::vector<Item>> chart(n + 1);

  auto add = [&chart](size_t position, Item item) {
    for (const Item& existing : chart[position]) {
      if (existing == item) return;
    }
    chart[position].push_back(item);
  };

  for (size_t p = 0; p < productions_.size(); ++p) {
    if (productions_[p].head == start_) add(0, Item{p, 0, 0});
  }

  for (size_t position = 0; position <= n; ++position) {
    // chart[position] grows while we scan it.
    for (size_t i = 0; i < chart[position].size(); ++i) {
      Item item = chart[position][i];
      const Production& production = productions_[item.production];
      if (item.dot == production.body.size()) {
        // Completion: advance every item waiting on this head.
        for (size_t j = 0; j < chart[item.origin].size(); ++j) {
          Item waiting = chart[item.origin][j];
          const Production& wp = productions_[waiting.production];
          if (waiting.dot < wp.body.size() &&
              !wp.body[waiting.dot].is_terminal &&
              wp.body[waiting.dot].nonterminal == production.head) {
            add(position,
                Item{waiting.production, waiting.dot + 1, waiting.origin});
          }
        }
        continue;
      }
      const Symbol& next = production.body[item.dot];
      if (next.is_terminal) {
        // Scan with subsumption: e.g. EQPREDICATE tokens are a special
        // case of PREDICATE, flat ATTRIBUTE tokens of PATH (see
        // scan_matches for the full matrix).
        bool matches =
            position < n && scan_matches(next.terminal, tokens[position]);
        if (matches) {
          add(position + 1, Item{item.production, item.dot + 1, item.origin});
        }
      } else {
        // Prediction.
        for (size_t p = 0; p < productions_.size(); ++p) {
          if (productions_[p].head == next.nonterminal) {
            add(position, Item{p, 0, position});
          }
        }
      }
    }
  }

  for (const Item& item : chart[n]) {
    const Production& production = productions_[item.production];
    if (production.head == start_ && item.origin == 0 &&
        item.dot == production.body.size()) {
      return true;
    }
  }
  return false;
}

namespace {

/// True when `expr` is a conjunction of equality comparisons only.
bool equality_only(const oql::ExprPtr& expr) {
  if (expr == nullptr) return false;
  if (expr->kind == oql::ExprKind::Binary) {
    if (expr->binary_op == oql::BinaryOp::And) {
      return equality_only(expr->left) && equality_only(expr->right);
    }
    return expr->binary_op == oql::BinaryOp::Eq;
  }
  return false;
}

/// True when `expr` contains a path that descends more than one level
/// (x.doc.a — a Path whose base is itself a Path). Those serialize to
/// the PATH* terminals, which only path-capable wrappers advertise.
bool has_nested_path(const oql::ExprPtr& expr) {
  if (expr == nullptr) return false;
  if (expr->kind == oql::ExprKind::Path &&
      expr->child != nullptr && expr->child->kind == oql::ExprKind::Path) {
    return true;
  }
  for (const oql::ExprPtr* part : {&expr->child, &expr->left, &expr->right}) {
    if (has_nested_path(*part)) return true;
  }
  for (const oql::ExprPtr& arg : expr->args) {
    if (has_nested_path(arg)) return true;
  }
  for (const auto& [name, field] : expr->struct_fields) {
    if (has_nested_path(field)) return true;
  }
  return false;
}

Terminal predicate_terminal(const oql::ExprPtr& expr) {
  const bool eq = equality_only(expr);
  if (has_nested_path(expr)) {
    return eq ? Terminal::PathEqPredicate : Terminal::PathPredicate;
  }
  return eq ? Terminal::EqPredicate : Terminal::Predicate;
}

Terminal attribute_terminal(const oql::ExprPtr& projection) {
  return has_nested_path(projection) ? Terminal::Path : Terminal::Attribute;
}

/// `as_argument` distinguishes the paper's two uses of a source: a bare
/// get at the root serializes as get(SOURCE) — the whole-source fetch —
/// while a get appearing as an operator argument is just that operator
/// applied directly to the source and serializes as SOURCE, matching the
/// paper's non-composing production  c :- project OPEN ATTRIBUTE COMMA
/// SOURCE CLOSE.
bool serialize_impl(const algebra::LogicalPtr& expr,
                    std::vector<Terminal>& out, bool as_argument) {
  using algebra::LOp;
  switch (expr->op) {
    case LOp::Get:
      if (as_argument) {
        out.push_back(Terminal::Source);
      } else {
        out.insert(out.end(), {Terminal::Get, Terminal::Open,
                               Terminal::Source, Terminal::Close});
      }
      return true;
    case LOp::Project: {
      out.insert(out.end(), {Terminal::Project, Terminal::Open,
                             attribute_terminal(expr->projection),
                             Terminal::Comma});
      if (!serialize_impl(expr->child, out, true)) return false;
      out.push_back(Terminal::Close);
      return true;
    }
    case LOp::Filter: {
      out.insert(out.end(), {Terminal::Select, Terminal::Open,
                             predicate_terminal(expr->predicate),
                             Terminal::Comma});
      if (!serialize_impl(expr->child, out, true)) return false;
      out.push_back(Terminal::Close);
      return true;
    }
    case LOp::Join: {
      out.insert(out.end(), {Terminal::Join, Terminal::Open});
      if (!serialize_impl(expr->left, out, true)) return false;
      out.push_back(Terminal::Comma);
      if (!serialize_impl(expr->right, out, true)) return false;
      out.insert(out.end(), {Terminal::Comma,
                             predicate_terminal(expr->predicate),
                             Terminal::Close});
      return true;
    }
    case LOp::Union:
    case LOp::Const:
    case LOp::Submit:
      return false;  // outside the wrapper interface language
  }
  return false;
}

}  // namespace

bool serialize(const algebra::LogicalPtr& expr, std::vector<Terminal>& out) {
  return serialize_impl(expr, out, /*as_argument=*/false);
}

bool Grammar::accepts(const algebra::LogicalPtr& expr) const {
  std::vector<Terminal> tokens;
  if (!serialize(expr, tokens)) return false;
  return recognizes(tokens);
}

Grammar CapabilitySet::to_grammar() const {
  // The paper's §3.2 construction. Nonterminals: `a` (start), one
  // per operator (b=get, c=project, d=select, e=join), and with
  // composition the argument nonterminal `s`.
  std::vector<Production> productions;
  auto arg = [this]() {
    return compose ? Symbol::nt("s") : Symbol::t(Terminal::Source);
  };

  if (get) productions.push_back({"a", {Symbol::nt("b")}});
  if (project) productions.push_back({"a", {Symbol::nt("c")}});
  if (select) productions.push_back({"a", {Symbol::nt("d")}});
  if (join) productions.push_back({"a", {Symbol::nt("e")}});

  if (get) {
    productions.push_back({"b",
                           {Symbol::t(Terminal::Get), Symbol::t(Terminal::Open),
                            Symbol::t(Terminal::Source),
                            Symbol::t(Terminal::Close)}});
  }
  if (project) {
    productions.push_back(
        {"c",
         {Symbol::t(Terminal::Project), Symbol::t(Terminal::Open),
          Symbol::t(Terminal::Attribute), Symbol::t(Terminal::Comma), arg(),
          Symbol::t(Terminal::Close)}});
  }
  if (select) {
    productions.push_back(
        {"d",
         {Symbol::t(Terminal::Select), Symbol::t(Terminal::Open),
          Symbol::t(Terminal::Predicate), Symbol::t(Terminal::Comma), arg(),
          Symbol::t(Terminal::Close)}});
  }
  if (join) {
    productions.push_back(
        {"e",
         {Symbol::t(Terminal::Join), Symbol::t(Terminal::Open), arg(),
          Symbol::t(Terminal::Comma), arg(), Symbol::t(Terminal::Comma),
          Symbol::t(Terminal::Predicate), Symbol::t(Terminal::Close)}});
  }
  if (compose) {
    if (get) productions.push_back({"s", {Symbol::nt("b")}});
    if (project) productions.push_back({"s", {Symbol::nt("c")}});
    if (select) productions.push_back({"s", {Symbol::nt("d")}});
    if (join) productions.push_back({"s", {Symbol::nt("e")}});
    productions.push_back({"s", {Symbol::t(Terminal::Source)}});
  }
  internal_check(!productions.empty(),
                 "capability set with no supported operators");
  return Grammar("a", std::move(productions));
}

}  // namespace disco::grammar
