// Wrapper capability description (§1.4, §3.2 of the paper).
//
// A wrapper advertises which logical operators it supports, and whether
// they compose, by returning a *grammar*. The paper gives the example of
// a wrapper that understands get and project but not their composition:
//
//   a :- b
//   a :- c
//   b :- get OPEN SOURCE CLOSE
//   c :- project OPEN ATTRIBUTE COMMA SOURCE CLOSE
//
// and the composing variant that adds  s :- b | c | SOURCE  and uses `s`
// in the argument positions.
//
// We implement both forms the paper describes:
//   * CapabilitySet — the operator-set form ("the call may return
//     {get, project, compose}"), a convenience layer; and
//   * Grammar — the production form, checked by an Earley recognizer.
// CapabilitySet::to_grammar() produces exactly the productions above, and
// accepts() serializes a logical expression to the terminal alphabet
// (get/project/select/join/OPEN/CLOSE/ATTRIBUTE/PREDICATE/COMMA/SOURCE)
// and asks the recognizer. The mediator's pushdown rules call accepts()
// before every rewrite that moves work into a submit (§3.2: "the
// transformation rule consults the wrapper interface").
#pragma once

#include <set>
#include <string>
#include <vector>

#include "algebra/logical.hpp"

namespace disco::grammar {

/// Terminal alphabet of the wrapper interface language.
enum class Terminal {
  Get,
  Project,
  Select,  ///< the filtering operator
  Join,
  Open,
  Close,
  Attribute,
  Predicate,
  /// Equality-only predicate (a conjunction of `=` comparisons). §3.2:
  /// "the support for certain comparison operators ... can be defined by
  /// returning a grammar" — a wrapper for a lookup-only store accepts
  /// EQPREDICATE where a full DBMS wrapper accepts PREDICATE. An
  /// equality-only predicate *is* a predicate, so a PREDICATE symbol in a
  /// grammar also matches an EQPREDICATE token (see recognizes()).
  EqPredicate,
  Comma,
  Source,
  /// Nested-path forms, produced when a projection or predicate descends
  /// more than one level into an attribute (x.doc.a.b). Semi-structured
  /// wrappers (src/wrapper/doc_wrapper.*) advertise these; the flat
  /// relational grammars never match them, which is what keeps the
  /// optimizer from pushing nested paths to a wrapper that cannot
  /// flatten them (those predicates stay mediator-side per §4).
  /// Subsumption at scan time (see recognizes()):
  ///   PATH            matches {PATH, ATTRIBUTE} tokens
  ///   PATHEQPREDICATE matches {PATHEQPREDICATE, EQPREDICATE} tokens
  ///   PATHPREDICATE   matches {PATHPREDICATE, PATHEQPREDICATE,
  ///                            PREDICATE, EQPREDICATE} tokens
  Path,
  PathEqPredicate,
  PathPredicate,
};

const char* to_string(Terminal terminal);

/// One grammar symbol: terminal or nonterminal (by name).
struct Symbol {
  bool is_terminal;
  Terminal terminal;     // when is_terminal
  std::string nonterminal;  // when !is_terminal

  static Symbol t(Terminal terminal) { return Symbol{true, terminal, ""}; }
  static Symbol nt(std::string name) {
    return Symbol{false, Terminal::Get, std::move(name)};
  }
};

struct Production {
  std::string head;
  std::vector<Symbol> body;
};

/// A context-free grammar over the wrapper terminal alphabet.
class Grammar {
 public:
  Grammar() = default;
  Grammar(std::string start, std::vector<Production> productions);

  /// Parses the paper's textual notation, e.g.
  ///   "a :- b\n a :- c\n b :- get OPEN SOURCE CLOSE\n ..."
  /// Uppercase names and the operator names get/project/select/join are
  /// terminals; everything else is a nonterminal. The head of the first
  /// production is the start symbol. Throws ParseError on malformed text.
  static Grammar parse(const std::string& text);

  /// Earley recognition of `tokens` from the start symbol.
  bool recognizes(const std::vector<Terminal>& tokens) const;

  /// Serializes `expr` to the terminal alphabet and recognizes it. Submit
  /// nodes must not appear below the wrapper boundary; Union/Const are not
  /// part of the wrapper language and make accepts() return false.
  bool accepts(const algebra::LogicalPtr& expr) const;

  const std::string& start() const { return start_; }
  const std::vector<Production>& productions() const { return productions_; }
  std::string to_text() const;

 private:
  std::string start_;
  std::vector<Production> productions_;
};

/// Serializes a logical expression into the wrapper terminal language:
///   get(e, x)            -> get ( SOURCE )
///   project(p, X)        -> project ( ATTRIBUTE|PATH , <X> )
///   select(pred, X)      -> select ( PREDICATE|EQPREDICATE|PATH... , <X> )
///   join(L, R, pred)     -> join ( <L> , <R> , PREDICATE|... )
/// A predicate serializes as EQPREDICATE when it is a conjunction of
/// equality comparisons only, and to the PATH* variants when it contains
/// a path deeper than one level (x.doc.a); a projection containing such
/// a path serializes as PATH instead of ATTRIBUTE.
/// Returns false when the expression contains operators outside the
/// wrapper language (union, const, submit).
bool serialize(const algebra::LogicalPtr& expr, std::vector<Terminal>& out);

/// The operator-set capability form with a composition flag.
struct CapabilitySet {
  bool get = true;
  bool project = false;
  bool select = false;
  bool join = false;
  bool compose = false;  ///< operators may nest

  /// Generates the production grammar equivalent (the paper's §3.2
  /// construction): without compose, each operator applies to a bare
  /// SOURCE; with compose, argument positions accept any supported form.
  Grammar to_grammar() const;
};

}  // namespace disco::grammar
